package ring

import (
	"errors"

	"sync"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/graph"
	"repro/internal/vt"
)

const (
	prodConn graph.ConnID = 10
	consConn graph.ConnID = 20
)

func newRing(t *testing.T, capacity int, opts ...func(*buffer.Config)) *Ring {
	t.Helper()
	cfg := buffer.Config{Name: "R", Node: 1, Capacity: capacity}
	for _, o := range opts {
		o(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AttachProducer(prodConn); err != nil {
		t.Fatal(err)
	}
	if err := r.AttachConsumer(consConn, 1); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(buffer.Config{Name: "R"}); err == nil {
		t.Error("capacity 0 must be rejected")
	}
	if _, err := New(buffer.Config{Name: "R", Capacity: 8, Clock: clock.NewVirtual()}); err == nil {
		t.Error("discrete-event clock must be rejected")
	}
	r, err := New(buffer.Config{Name: "R", Capacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Capacity() != 4 {
		t.Errorf("capacity 3 → %d slots, want 4 (next power of two)", r.Capacity())
	}
}

func TestAttachmentShape(t *testing.T) {
	r := newRing(t, 8)
	if err := r.AttachConsumer(consConn+1, 1); !errors.Is(err, buffer.ErrUnsupported) {
		t.Errorf("second consumer: %v, want ErrUnsupported", err)
	}
	if err := r.AttachConsumer(consConn, 2); !errors.Is(err, buffer.ErrUnsupported) {
		t.Errorf("window 2: %v, want ErrUnsupported", err)
	}
	if _, err := r.GetAt(consConn, 1); !errors.Is(err, buffer.ErrUnsupported) {
		t.Errorf("GetAt: %v, want ErrUnsupported", err)
	}
	if _, err := r.Put(graph.ConnID(99), &buffer.Item{TS: 1}); !errors.Is(err, buffer.ErrNotAttached) {
		t.Errorf("unattached put: %v, want ErrNotAttached", err)
	}
	if _, err := r.Get(graph.ConnID(99)); !errors.Is(err, buffer.ErrNotAttached) {
		t.Errorf("unattached get: %v, want ErrNotAttached", err)
	}
}

func TestSPSCOrder(t *testing.T) {
	r := newRing(t, 128)
	for ts := vt.Timestamp(1); ts <= 100; ts++ {
		if _, err := r.Put(prodConn, &buffer.Item{TS: ts, Size: 10}); err != nil {
			t.Fatal(err)
		}
	}
	for ts := vt.Timestamp(1); ts <= 100; ts++ {
		res, err := r.Get(consConn)
		if err != nil {
			t.Fatal(err)
		}
		if res.Item.TS != ts {
			t.Fatalf("got ts %v, want %v (FIFO order)", res.Item.TS, ts)
		}
	}
	puts, frees := r.Stats()
	if puts != 100 || frees != 100 {
		t.Fatalf("stats = %d/%d, want 100/100", puts, frees)
	}
	if items, bytes := r.Occupancy(); items != 0 || bytes != 0 {
		t.Fatalf("occupancy = %d/%d after drain, want 0/0", items, bytes)
	}
}

func TestCapacityBlocking(t *testing.T) {
	r := newRing(t, 2)
	for ts := vt.Timestamp(1); ts <= 2; ts++ {
		if _, err := r.Put(prodConn, &buffer.Item{TS: ts}); err != nil {
			t.Fatal(err)
		}
	}
	unblocked := make(chan error, 1)
	go func() {
		_, err := r.Put(prodConn, &buffer.Item{TS: 3})
		unblocked <- err
	}()
	select {
	case err := <-unblocked:
		t.Fatalf("put into a full ring returned early (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := r.Get(consConn); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-unblocked:
		if err != nil {
			t.Fatalf("unblocked put: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("put did not unblock after a pop freed a slot")
	}
}

func TestCloseDrainsThenErrors(t *testing.T) {
	r := newRing(t, 8)
	for ts := vt.Timestamp(1); ts <= 3; ts++ {
		if _, err := r.Put(prodConn, &buffer.Item{TS: ts}); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	if _, err := r.Put(prodConn, &buffer.Item{TS: 4}); !errors.Is(err, buffer.ErrClosed) {
		t.Fatalf("put after close: %v, want ErrClosed", err)
	}
	for ts := vt.Timestamp(1); ts <= 3; ts++ {
		res, err := r.Get(consConn)
		if err != nil || res.Item.TS != ts {
			t.Fatalf("drain get = (%v, %v), want ts %v", res.Item.TS, err, ts)
		}
	}
	if _, err := r.Get(consConn); !errors.Is(err, buffer.ErrClosed) {
		t.Fatalf("get after drain: %v, want ErrClosed", err)
	}
	if _, ok, err := r.TryGet(consConn); ok || !errors.Is(err, buffer.ErrClosed) {
		t.Fatalf("tryget after drain: ok=%v err=%v, want ErrClosed", ok, err)
	}
}

func TestConsumerFailureUnblocksProducer(t *testing.T) {
	r := newRing(t, 2)
	for ts := vt.Timestamp(1); ts <= 2; ts++ {
		if _, err := r.Put(prodConn, &buffer.Item{TS: ts}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.Put(prodConn, &buffer.Item{TS: 3})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	r.FailConsumer(consConn)
	select {
	case err := <-done:
		if !errors.Is(err, buffer.ErrPeerFailed) {
			t.Fatalf("blocked put after consumer death: %v, want ErrPeerFailed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("put did not observe the dead consumer")
	}
	if !r.WouldBeDead(99) {
		t.Error("WouldBeDead must report true with a dead audience")
	}
}

func TestProducerFailureDrainsThenErrors(t *testing.T) {
	r := newRing(t, 8)
	for ts := vt.Timestamp(1); ts <= 2; ts++ {
		if _, err := r.Put(prodConn, &buffer.Item{TS: ts}); err != nil {
			t.Fatal(err)
		}
	}
	r.FailProducer(prodConn)
	for ts := vt.Timestamp(1); ts <= 2; ts++ {
		res, err := r.Get(consConn)
		if err != nil || res.Item.TS != ts {
			t.Fatalf("drain get = (%v, %v), want ts %v", res.Item.TS, err, ts)
		}
	}
	if _, err := r.Get(consConn); !errors.Is(err, buffer.ErrPeerFailed) {
		t.Fatalf("get after producers died: %v, want ErrPeerFailed", err)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	r := newRing(t, 16)
	items := make([]*buffer.Item, 40)
	for i := range items {
		items[i] = &buffer.Item{TS: vt.Timestamp(i + 1), Size: 8}
	}
	// The batch is larger than the ring: PutBatch must publish prefixes
	// and park, so a concurrent consumer is required for progress.
	var got []vt.Timestamp
	done := make(chan struct{})
	go func() {
		defer close(done)
		dst := make([]buffer.GetResult, 7)
		for len(got) < len(items) {
			n, err := r.GetBatch(consConn, dst)
			if err != nil {
				t.Errorf("getbatch: %v", err)
				return
			}
			for _, res := range dst[:n] {
				got = append(got, res.Item.TS)
			}
		}
	}()
	applied, _, err := r.PutBatch(prodConn, items)
	if err != nil || applied != len(items) {
		t.Fatalf("putbatch = (%d, %v), want (%d, nil)", applied, err, len(items))
	}
	<-done
	for i, ts := range got {
		if ts != vt.Timestamp(i+1) {
			t.Fatalf("got[%d] = %v, want %v (FIFO across batches)", i, ts, i+1)
		}
	}
	puts, frees := r.Stats()
	if puts != int64(len(items)) || frees != int64(len(items)) {
		t.Fatalf("stats = %d/%d, want %d/%d", puts, frees, len(items), len(items))
	}
}

func TestGetBatchEmptyDst(t *testing.T) {
	r := newRing(t, 8)
	if n, err := r.GetBatch(consConn, nil); n != 0 || err != nil {
		t.Fatalf("getbatch(nil) = (%d, %v), want (0, nil)", n, err)
	}
}

// TestPooledPutGetAllocs pins the ring's allocation behaviour with a
// pool: a put+get round trip allocates nothing — the put copies the item
// value into the slot and recycles the carrier immediately, so even a
// sustained backlog would stay at 0.
func TestPooledPutGetAllocs(t *testing.T) {
	pool := buffer.NewItemPool()
	r := newRing(t, 64, func(cfg *buffer.Config) { cfg.Pool = pool })
	ts := vt.Timestamp(0)
	allocs := testing.AllocsPerRun(500, func() {
		ts++
		it := pool.Get()
		it.TS, it.Size = ts, 16
		if _, err := r.Put(prodConn, it); err != nil {
			panic(err)
		}
		if _, err := r.Get(consConn); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("pooled ring put+get: %.0f allocs/op, want 0", allocs)
	}
}

// TestDrainConcurrentWithConsumer exercises the CAS-claimed pop path:
// Drain runs while a consumer goroutine is still popping (the shape
// Runtime.Stop produces), and every item must be accounted exactly once
// between them.
func TestDrainConcurrentWithConsumer(t *testing.T) {
	const total = 10000
	r := newRing(t, 1024)
	var consumed int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			_, err := r.Get(consConn)
			if err != nil {
				return
			}
			consumed++
		}
	}()
	go func() {
		for ts := vt.Timestamp(1); ts <= total; ts++ {
			if _, err := r.Put(prodConn, &buffer.Item{TS: ts, Size: 4}); err != nil {
				return
			}
		}
		r.Close()
	}()
	// Drain races the still-running consumer, exactly like Stop.
	time.Sleep(time.Millisecond)
	drained := r.Drain()
	<-done
	drained += r.Drain() // anything the consumer left behind after exit
	puts, frees := r.Stats()
	if puts != total {
		t.Fatalf("puts = %d, want %d", puts, total)
	}
	if frees != puts {
		t.Fatalf("frees = %d, want %d (every put reclaimed exactly once)", frees, puts)
	}
	if consumed+int64(drained) != total {
		t.Fatalf("consumer %d + drain %d = %d, want %d", consumed, drained, consumed+int64(drained), total)
	}
	if items, bytes := r.Occupancy(); items != 0 || bytes != 0 {
		t.Fatalf("occupancy = %d/%d, want 0/0", items, bytes)
	}
}

// TestMPSCProducers drives N concurrent producers through the CAS tail
// against one consumer and checks exact delivery: every timestamp
// arrives exactly once and the accounting matches to the item.
func TestMPSCProducers(t *testing.T) {
	const producers, perProducer = 4, 3000
	cfg := buffer.Config{Name: "R", Node: 1, Capacity: 256, Pool: buffer.NewItemPool()}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < producers; i++ {
		if err := r.AttachProducer(graph.ConnID(100 + i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.AttachConsumer(consConn, 1); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn := graph.ConnID(100 + i)
			for k := 0; k < perProducer; k++ {
				it := cfg.Pool.Get()
				it.TS = vt.Timestamp(i*perProducer + k + 1)
				it.Size = 8
				if _, err := r.Put(conn, it); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(i)
	}

	seen := make(map[vt.Timestamp]int, producers*perProducer)
	dst := make([]buffer.GetResult, 64)
	for got := 0; got < producers*perProducer; {
		n, err := r.GetBatch(consConn, dst)
		if err != nil {
			t.Fatalf("getbatch after %d items: %v", got, err)
		}
		for _, res := range dst[:n] {
			seen[res.Item.TS]++
		}
		got += n
	}
	wg.Wait()

	if len(seen) != producers*perProducer {
		t.Fatalf("distinct timestamps = %d, want %d", len(seen), producers*perProducer)
	}
	for ts, n := range seen {
		if n != 1 {
			t.Fatalf("ts %v delivered %d times, want exactly once", ts, n)
		}
	}
	puts, frees := r.Stats()
	if want := int64(producers * perProducer); puts != want || frees != want {
		t.Fatalf("stats = %d/%d, want %d/%d", puts, frees, want, want)
	}
	if items, bytes := r.Occupancy(); items != 0 || bytes != 0 {
		t.Fatalf("occupancy = %d/%d, want 0/0", items, bytes)
	}
}

// TestPerProducerFIFO checks the per-producer ordering guarantee in MPSC
// mode: interleaving across producers is arbitrary, but each producer's
// own items arrive in its put order.
func TestPerProducerFIFO(t *testing.T) {
	const producers, perProducer = 3, 2000
	r, err := New(buffer.Config{Name: "R", Node: 1, Capacity: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < producers; i++ {
		if err := r.AttachProducer(graph.ConnID(100 + i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.AttachConsumer(consConn, 1); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn := graph.ConnID(100 + i)
			for k := 0; k < perProducer; k++ {
				// Payload identifies the producer; TS is its sequence.
				it := &buffer.Item{TS: vt.Timestamp(k + 1), Payload: i, Size: 1}
				if _, err := r.Put(conn, it); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(i)
	}
	last := make([]vt.Timestamp, producers)
	for got := 0; got < producers*perProducer; got++ {
		res, err := r.Get(consConn)
		if err != nil {
			t.Fatal(err)
		}
		p := res.Item.Payload.(int)
		if res.Item.TS <= last[p] {
			t.Fatalf("producer %d: ts %v after %v — per-producer order broken", p, res.Item.TS, last[p])
		}
		last[p] = res.Item.TS
	}
	wg.Wait()
}

func TestHighWaterWithMetricsOff(t *testing.T) {
	r := newRing(t, 8)
	if items, bytes := r.HighWater(); items != 0 || bytes != 0 {
		t.Fatalf("high water without metrics = %d/%d, want 0/0", items, bytes)
	}
}

// Compile-time interface check plus a registry round trip.
func TestRegistered(t *testing.T) {
	var _ buffer.Buffer = (*Ring)(nil)
	b, err := buffer.New("ring", buffer.Config{Name: "viaRegistry", Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Caps(); got.Discipline != buffer.FIFO || !got.TryGet {
		t.Fatalf("caps = %+v", got)
	}
	if b.Name() != "viaRegistry" {
		t.Fatalf("name = %q", b.Name())
	}
	if b.Node() != 0 {
		t.Fatalf("node = %v, want 0", b.Node())
	}
}
