// Package gc implements the garbage-collection strategies of the Stampede
// runtime that the paper's evaluation builds on (§4):
//
//   - None: items are reclaimed only when their channel closes. The
//     degenerate baseline, useful for ablations.
//
//   - Transparent (TGC): the runtime computes an application-wide global
//     virtual time — the minimum consumption guarantee over every consumer
//     connection in the application — and frees items older than it
//     (Nikhil & Ramachandran, PODC 2000). Conservative: one slow consumer
//     anywhere retains garbage everywhere.
//
//   - DeadTimestamp (DGC): per-channel dead-timestamp identification
//     (Harel et al., ICPP 2002). An item is dead as soon as every consumer
//     attached to its channel has a consumption guarantee at or past its
//     timestamp; consumers that skipped it will never come back for it.
//     This is "the most resource saving" collector in Stampede and the one
//     every experiment of the paper runs with.
//
// GC answers "which already-produced items can be reclaimed"; ARU (package
// core) prevents wasteful items from being produced at all. The two
// mechanisms are complementary, and the reproduction composes them exactly
// as the paper does.
package gc

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/vt"
)

// Collector decides which live items of a channel are dead. One collector
// instance is shared by every channel of a runtime; implementations must
// be safe for concurrent use.
type Collector interface {
	// Name identifies the strategy ("none", "tgc", "dgc").
	Name() string
	// Observe notes that consumer connection conn (attached to channel
	// node ch) advanced its consumption guarantee: it will never again
	// request an item with timestamp ≤ g from that channel.
	Observe(ch graph.NodeID, conn graph.ConnID, g vt.Timestamp)
	// Forget removes a connection from consideration (consumer detach or
	// channel close), so it no longer holds back collection.
	Forget(ch graph.NodeID, conn graph.ConnID)
	// Dead appends to buf the timestamps in live that can be freed from
	// channel ch, whose attached consumers currently hold the given
	// guarantees, and returns the extended slice. Callers pass a reused
	// scratch slice (sliced to length 0) so the per-advance collection
	// sweep is allocation-free in steady state; nil is a valid buf.
	// Implementations must not retain buf or retain/mutate live.
	Dead(ch graph.NodeID, live *vt.Set, guarantees []vt.Timestamp, buf []vt.Timestamp) []vt.Timestamp
}

// none never frees anything.
type none struct{}

// NewNone returns the no-op collector.
func NewNone() Collector { return none{} }

func (none) Name() string                                     { return "none" }
func (none) Observe(graph.NodeID, graph.ConnID, vt.Timestamp) {}
func (none) Forget(graph.NodeID, graph.ConnID)                {}
func (none) Dead(_ graph.NodeID, _ *vt.Set, _ []vt.Timestamp, buf []vt.Timestamp) []vt.Timestamp {
	return buf
}

// deadTimestamp is the DGC: local, per-channel dead-timestamp inference.
type deadTimestamp struct{}

// NewDeadTimestamp returns the dead-timestamp collector (DGC).
func NewDeadTimestamp() Collector { return deadTimestamp{} }

func (deadTimestamp) Name() string                                     { return "dgc" }
func (deadTimestamp) Observe(graph.NodeID, graph.ConnID, vt.Timestamp) {}
func (deadTimestamp) Forget(graph.NodeID, graph.ConnID)                {}

func (deadTimestamp) Dead(_ graph.NodeID, live *vt.Set, guarantees []vt.Timestamp, buf []vt.Timestamp) []vt.Timestamp {
	if len(guarantees) == 0 {
		// No consumers attached yet: freeing now would race attachment.
		return buf
	}
	min := vt.Infinity
	for _, g := range guarantees {
		if g < min {
			min = g
		}
	}
	if min == vt.None {
		return buf
	}
	// Dead: every consumer has passed (or consumed) the timestamp. The
	// live set is sorted, so walk it in place and stop at the bound — no
	// snapshot copy on this per-advance path.
	live.Ascend(func(ts vt.Timestamp) bool {
		if ts > min {
			return false
		}
		buf = append(buf, ts)
		return true
	})
	return buf
}

// transparent is the TGC: an application-global virtual-time low-water
// mark. It tracks the guarantee of every consumer connection in the whole
// application and frees only items strictly below the global minimum.
type transparent struct {
	mu         sync.Mutex
	guarantees map[graph.ConnID]vt.Timestamp
}

// NewTransparent returns the transparent (global virtual time) collector.
func NewTransparent() Collector {
	return &transparent{guarantees: make(map[graph.ConnID]vt.Timestamp)}
}

func (t *transparent) Name() string { return "tgc" }

func (t *transparent) Observe(_ graph.NodeID, conn graph.ConnID, g vt.Timestamp) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.guarantees[conn]; !ok || g > cur {
		t.guarantees[conn] = g
	}
}

func (t *transparent) Forget(_ graph.NodeID, conn graph.ConnID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.guarantees, conn)
}

// globalMin returns the minimum guarantee over every known consumer, or
// None when any consumer has not consumed yet.
func (t *transparent) globalMin() vt.Timestamp {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.guarantees) == 0 {
		return vt.None
	}
	min := vt.Infinity
	for _, g := range t.guarantees {
		if g < min {
			min = g
		}
	}
	return min
}

func (t *transparent) Dead(_ graph.NodeID, live *vt.Set, guarantees []vt.Timestamp, buf []vt.Timestamp) []vt.Timestamp {
	if len(guarantees) == 0 {
		return buf
	}
	gvt := t.globalMin()
	if gvt == vt.None {
		return buf
	}
	// Strictly below the global low-water mark: no thread anywhere in
	// the application can name this timestamp again.
	live.Ascend(func(ts vt.Timestamp) bool {
		if ts >= gvt {
			return false
		}
		buf = append(buf, ts)
		return true
	})
	return buf
}

// ByName constructs a collector from its report name; unknown names fall
// back to DGC (the paper's configuration).
func ByName(name string) Collector {
	switch name {
	case "none":
		return NewNone()
	case "tgc":
		return NewTransparent()
	default:
		return NewDeadTimestamp()
	}
}
