package gc

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/vt"
)

func TestNoneNeverFrees(t *testing.T) {
	c := NewNone()
	if c.Name() != "none" {
		t.Error("name")
	}
	live := vt.NewSet(1, 2, 3)
	c.Observe(0, 0, 100)
	if got := c.Dead(0, live, []vt.Timestamp{100, 100}, nil); got != nil {
		t.Fatalf("none collector freed %v", got)
	}
	c.Forget(0, 0) // must not panic
}

func TestDGCFreesBelowMinGuarantee(t *testing.T) {
	c := NewDeadTimestamp()
	if c.Name() != "dgc" {
		t.Error("name")
	}
	live := vt.NewSet(1, 2, 3, 4, 5)
	// Consumers at 3 and 4: min is 3 → items 1,2,3 dead.
	got := c.Dead(0, live, []vt.Timestamp{3, 4}, nil)
	want := []vt.Timestamp{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Dead = %v, want %v", got, want)
	}
}

func TestDGCNoConsumersOrUnstarted(t *testing.T) {
	c := NewDeadTimestamp()
	live := vt.NewSet(1, 2)
	if got := c.Dead(0, live, nil, nil); got != nil {
		t.Fatalf("no consumers: Dead = %v", got)
	}
	if got := c.Dead(0, live, []vt.Timestamp{vt.None, 5}, nil); got != nil {
		t.Fatalf("unstarted consumer must block collection, got %v", got)
	}
}

func TestDGCDetachedConsumerInfinity(t *testing.T) {
	c := NewDeadTimestamp()
	live := vt.NewSet(7, 9)
	got := c.Dead(0, live, []vt.Timestamp{vt.Infinity}, nil)
	if !reflect.DeepEqual(got, []vt.Timestamp{7, 9}) {
		t.Fatalf("detached-only consumers must free everything, got %v", got)
	}
}

// Property (DGC safety): an item a consumer could still request — its
// timestamp above that consumer's guarantee — is never declared dead.
func TestDGCQuickSafety(t *testing.T) {
	c := NewDeadTimestamp()
	f := func(liveRaw []int8, guarRaw []int8) bool {
		live := vt.NewSet()
		for _, v := range liveRaw {
			live.Add(vt.Timestamp(v))
		}
		guarantees := make([]vt.Timestamp, len(guarRaw))
		for i, v := range guarRaw {
			guarantees[i] = vt.Timestamp(v)
		}
		dead := c.Dead(0, live, guarantees, nil)
		for _, d := range dead {
			for _, g := range guarantees {
				if d > g { // some consumer may still request d
					return false
				}
			}
			if !live.Contains(d) {
				return false // must only name live items
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTGCUsesGlobalMinimum(t *testing.T) {
	c := NewTransparent()
	if c.Name() != "tgc" {
		t.Error("name")
	}
	chA, chB := graph.NodeID(1), graph.NodeID(2)
	// Channel A's consumer is at 10, channel B's lags at 2.
	c.Observe(chA, graph.ConnID(0), 10)
	c.Observe(chB, graph.ConnID(1), 2)

	live := vt.NewSet(1, 2, 3, 9)
	// Even on channel A, only items < 2 (the global min) die.
	got := c.Dead(chA, live, []vt.Timestamp{10}, nil)
	if !reflect.DeepEqual(got, []vt.Timestamp{1}) {
		t.Fatalf("TGC Dead = %v, want [1]", got)
	}

	// DGC on the same channel would free 1,2,3,9.
	dgc := NewDeadTimestamp()
	if got := dgc.Dead(chA, live, []vt.Timestamp{10}, nil); len(got) != 4 {
		t.Fatalf("DGC comparison = %v", got)
	}
}

func TestTGCObserveKeepsMax(t *testing.T) {
	c := NewTransparent().(*transparent)
	c.Observe(0, 0, 5)
	c.Observe(0, 0, 3) // stale observation must not regress
	if got := c.globalMin(); got != 5 {
		t.Fatalf("globalMin = %v, want 5", got)
	}
}

func TestTGCForgetReleases(t *testing.T) {
	c := NewTransparent()
	c.Observe(0, graph.ConnID(0), 100)
	c.Observe(0, graph.ConnID(1), 1)
	live := vt.NewSet(50)
	if got := c.Dead(0, live, []vt.Timestamp{100}, nil); got != nil {
		t.Fatalf("lagging consumer must retain, got %v", got)
	}
	c.Forget(0, graph.ConnID(1))
	if got := c.Dead(0, live, []vt.Timestamp{100}, nil); !reflect.DeepEqual(got, []vt.Timestamp{50}) {
		t.Fatalf("after Forget, Dead = %v, want [50]", got)
	}
}

func TestTGCEmptyStates(t *testing.T) {
	c := NewTransparent()
	live := vt.NewSet(1)
	if got := c.Dead(0, live, nil, nil); got != nil {
		t.Fatalf("no local consumers: %v", got)
	}
	// Local consumers exist but nothing observed globally yet.
	if got := c.Dead(0, live, []vt.Timestamp{5}, nil); got != nil {
		t.Fatalf("no global observations yet: %v", got)
	}
}

// Property: TGC is at least as conservative as DGC — everything TGC frees,
// DGC would also free given the same local guarantees (with the global
// view seeded from the same channel).
func TestTGCQuickMoreConservativeThanDGC(t *testing.T) {
	f := func(liveRaw []int8, guarRaw []int8) bool {
		if len(guarRaw) == 0 {
			return true
		}
		tgc := NewTransparent()
		dgc := NewDeadTimestamp()
		live := vt.NewSet()
		for _, v := range liveRaw {
			live.Add(vt.Timestamp(v))
		}
		guarantees := make([]vt.Timestamp, len(guarRaw))
		for i, v := range guarRaw {
			guarantees[i] = vt.Timestamp(v)
			tgc.Observe(0, graph.ConnID(i), guarantees[i])
		}
		tgcDead := map[vt.Timestamp]bool{}
		for _, ts := range tgc.Dead(0, live, guarantees, nil) {
			tgcDead[ts] = true
		}
		dgcDead := map[vt.Timestamp]bool{}
		for _, ts := range dgc.Dead(0, live, guarantees, nil) {
			dgcDead[ts] = true
		}
		for ts := range tgcDead {
			if !dgcDead[ts] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestByName(t *testing.T) {
	if ByName("none").Name() != "none" {
		t.Error("none")
	}
	if ByName("tgc").Name() != "tgc" {
		t.Error("tgc")
	}
	if ByName("dgc").Name() != "dgc" {
		t.Error("dgc")
	}
	if ByName("bogus").Name() != "dgc" {
		t.Error("unknown must fall back to dgc")
	}
}
