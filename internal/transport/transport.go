// Package transport models the cluster substrate the paper ran on: a
// 17-node cluster of 8-way SMPs connected by Gigabit Ethernet (§5). The
// reproduction simulates hosts in-process; the cost of moving data is
// charged as time on a Clock rather than incurred by real sockets, which
// keeps experiments deterministic and laptop-scale while preserving the
// ratios the feedback mechanism reacts to.
//
// Two resources are modeled:
//
//   - Network: a serialized link between each ordered pair of hosts, with
//     latency plus size/bandwidth occupancy. Cross-host put/get operations
//     charge it.
//
//   - Bus: the shared memory system of one host. Producing or copying an
//     item charges size/bandwidth against a host-wide resource. This is
//     the causal channel by which wasteful production slows useful work
//     (the paper's configuration 1 throughput effect): a digitizer running
//     full tilt saturates the host's memory system.
//
// A real-sockets variant for genuinely distributed runs lives in package
// remote; this package is purely the simulation substrate.
package transport

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
)

// HostID identifies a simulated cluster machine. Hosts are numbered
// 0..N-1.
type HostID int

// LinkSpec describes one direction of a network link.
type LinkSpec struct {
	// Latency is the propagation delay charged once per transfer.
	Latency time.Duration
	// BytesPerSec is the link bandwidth. Zero means infinite bandwidth
	// (only latency is charged).
	BytesPerSec float64
}

// occupancy returns the serialization time for size bytes.
func (l LinkSpec) occupancy(size int64) time.Duration {
	if l.BytesPerSec <= 0 || size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / l.BytesPerSec * float64(time.Second))
}

// GigabitEthernet approximates the paper's interconnect: 1 Gb/s and ~100µs
// of software latency per transfer (circa-2004 TCP stacks).
var GigabitEthernet = LinkSpec{Latency: 100 * time.Microsecond, BytesPerSec: 125e6}

// resource is a serialized shared resource: requests queue behind each
// other FIFO. It is the common mechanism behind links and buses.
type resource struct {
	clk      clock.Clock
	mu       sync.Mutex
	nextFree time.Duration
	busy     time.Duration // cumulative occupancy charged
}

// charge blocks the caller for queueing delay plus cost and returns the
// total time blocked.
func (r *resource) charge(cost time.Duration) time.Duration {
	if cost <= 0 {
		return 0
	}
	r.mu.Lock()
	now := r.clk.Now()
	start := now
	if r.nextFree > start {
		start = r.nextFree
	}
	r.nextFree = start + cost
	r.busy += cost
	wait := r.nextFree - now
	r.mu.Unlock()
	r.clk.Sleep(wait)
	return wait
}

// busyTime returns the cumulative occupancy charged so far.
func (r *resource) busyTime() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busy
}

// Network is a simulated cluster interconnect with one serialized link per
// ordered host pair. Intra-host transfers are free (the Bus accounts for
// local copies). It is safe for concurrent use.
type Network struct {
	clk   clock.Clock
	hosts int
	spec  LinkSpec
	links map[[2]HostID]*resource
	mu    sync.Mutex
}

// NewNetwork creates a network of n hosts with uniform link
// characteristics. n must be positive.
func NewNetwork(clk clock.Clock, n int, spec LinkSpec) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("transport: invalid host count %d", n))
	}
	return &Network{clk: clk, hosts: n, spec: spec, links: make(map[[2]HostID]*resource)}
}

// Hosts returns the number of hosts.
func (n *Network) Hosts() int { return n.hosts }

// Spec returns the uniform link characteristics.
func (n *Network) Spec() LinkSpec { return n.spec }

func (n *Network) link(from, to HostID) *resource {
	key := [2]HostID{from, to}
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.links[key]
	if !ok {
		r = &resource{clk: n.clk}
		n.links[key] = r
	}
	return r
}

// Transfer blocks the caller for the time needed to move size bytes from
// one host to another: latency plus serialized link occupancy. Intra-host
// transfers return immediately. Unknown hosts panic, as placement bugs
// must not silently become free transfers.
func (n *Network) Transfer(from, to HostID, size int64) time.Duration {
	n.checkHost(from)
	n.checkHost(to)
	if from == to {
		return 0
	}
	occ := n.spec.occupancy(size)
	wait := n.link(from, to).charge(occ)
	if n.spec.Latency > 0 {
		n.clk.Sleep(n.spec.Latency)
		wait += n.spec.Latency
	}
	return wait
}

func (n *Network) checkHost(h HostID) {
	if h < 0 || int(h) >= n.hosts {
		panic(fmt.Sprintf("transport: host %d out of range [0,%d)", h, n.hosts))
	}
}

// LinkBusy returns the cumulative occupancy charged on the from→to link.
func (n *Network) LinkBusy(from, to HostID) time.Duration {
	return n.link(from, to).busyTime()
}

// Bus models the shared memory system of one host. Every item production
// and local copy charges size/BytesPerSec against it; concurrent charges
// serialize, so a host saturated by wasteful production delays all of its
// threads.
type Bus struct {
	res         resource
	bytesPerSec float64
}

// NewBus creates a bus with the given bandwidth. Non-positive bandwidth
// makes every charge free (an "infinite" memory system, useful in unit
// tests).
func NewBus(clk clock.Clock, bytesPerSec float64) *Bus {
	return &Bus{res: resource{clk: clk}, bytesPerSec: bytesPerSec}
}

// Charge blocks the caller for the time to move size bytes through the
// host memory system (queueing included) and returns the time blocked.
func (b *Bus) Charge(size int64) time.Duration {
	return b.ChargeScaled(size, 1)
}

// ChargeScaled is Charge with a cost multiplier ≥ 1, used to model
// memory-pressure slowdown: a host whose buffers hold many megabytes of
// live items pays more per byte moved (allocator, paging, and cache
// effects — the mechanism by which the paper's No-ARU configuration
// "generates memory pressure" that degrades throughput). Factors below 1
// are clamped to 1.
func (b *Bus) ChargeScaled(size int64, factor float64) time.Duration {
	if b == nil || b.bytesPerSec <= 0 || size <= 0 {
		return 0
	}
	if factor < 1 {
		factor = 1
	}
	cost := time.Duration(float64(size) / b.bytesPerSec * float64(time.Second) * factor)
	return b.res.charge(cost)
}

// BusyTime returns the cumulative occupancy charged on the bus.
func (b *Bus) BusyTime() time.Duration {
	if b == nil {
		return 0
	}
	return b.res.busyTime()
}

// Cluster bundles the per-host buses and the interconnect for a simulated
// machine room.
type Cluster struct {
	clk   clock.Clock
	net   *Network
	buses []*Bus
}

// ClusterSpec configures a simulated cluster.
type ClusterSpec struct {
	// Hosts is the machine count (≥1).
	Hosts int
	// Link characterizes every inter-host link.
	Link LinkSpec
	// BusBytesPerSec is each host's memory-system bandwidth; zero
	// disables bus accounting.
	BusBytesPerSec float64
}

// PaperCluster returns the specification used by the reproduction's
// experiments: Gigabit Ethernet links and a memory system of roughly
// 400 MB/s effective copy bandwidth per host (an 8-way 550 MHz Pentium III
// Xeon SMP of the paper's era).
func PaperCluster(hosts int) ClusterSpec {
	return ClusterSpec{Hosts: hosts, Link: GigabitEthernet, BusBytesPerSec: 400e6}
}

// NewCluster builds the simulated cluster.
func NewCluster(clk clock.Clock, spec ClusterSpec) *Cluster {
	c := &Cluster{clk: clk, net: NewNetwork(clk, spec.Hosts, spec.Link)}
	for i := 0; i < spec.Hosts; i++ {
		c.buses = append(c.buses, NewBus(clk, spec.BusBytesPerSec))
	}
	return c
}

// Hosts returns the machine count.
func (c *Cluster) Hosts() int { return c.net.Hosts() }

// Network returns the interconnect.
func (c *Cluster) Network() *Network { return c.net }

// Bus returns host h's memory system.
func (c *Cluster) Bus(h HostID) *Bus {
	c.net.checkHost(h)
	return c.buses[h]
}
