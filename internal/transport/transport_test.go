package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestLinkSpecOccupancy(t *testing.T) {
	l := LinkSpec{BytesPerSec: 1000}
	if got := l.occupancy(500); got != 500*time.Millisecond {
		t.Errorf("occupancy = %v, want 500ms", got)
	}
	if got := l.occupancy(0); got != 0 {
		t.Errorf("zero size occupancy = %v", got)
	}
	if got := (LinkSpec{}).occupancy(1 << 30); got != 0 {
		t.Errorf("infinite bandwidth occupancy = %v", got)
	}
}

func TestNetworkIntraHostIsFree(t *testing.T) {
	clk := clock.NewReal()
	n := NewNetwork(clk, 3, LinkSpec{Latency: time.Hour, BytesPerSec: 1})
	start := clk.Now()
	if d := n.Transfer(1, 1, 1<<20); d != 0 {
		t.Errorf("intra-host transfer charged %v", d)
	}
	if clk.Now()-start > 100*time.Millisecond {
		t.Error("intra-host transfer must not sleep")
	}
}

func TestNetworkChargesLatencyAndBandwidth(t *testing.T) {
	clk := clock.NewReal()
	// 1 MB/s bandwidth, 5ms latency: 10 kB → 10ms occupancy + 5ms.
	n := NewNetwork(clk, 2, LinkSpec{Latency: 5 * time.Millisecond, BytesPerSec: 1e6})
	start := clk.Now()
	n.Transfer(0, 1, 10_000)
	elapsed := clk.Now() - start
	if elapsed < 14*time.Millisecond {
		t.Errorf("transfer took %v, want ≥ ~15ms", elapsed)
	}
	if busy := n.LinkBusy(0, 1); busy != 10*time.Millisecond {
		t.Errorf("LinkBusy = %v, want 10ms", busy)
	}
}

func TestNetworkLinksSerialize(t *testing.T) {
	clk := clock.NewReal()
	n := NewNetwork(clk, 2, LinkSpec{BytesPerSec: 1e6}) // 10kB = 10ms
	start := clk.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.Transfer(0, 1, 10_000)
		}()
	}
	wg.Wait()
	elapsed := clk.Now() - start
	if elapsed < 35*time.Millisecond {
		t.Errorf("4 serialized 10ms transfers took %v, want ≥ ~40ms", elapsed)
	}
}

func TestNetworkDirectionsIndependent(t *testing.T) {
	clk := clock.NewReal()
	n := NewNetwork(clk, 2, LinkSpec{BytesPerSec: 1e6})
	start := clk.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); n.Transfer(0, 1, 20_000) }()
	go func() { defer wg.Done(); n.Transfer(1, 0, 20_000) }()
	wg.Wait()
	elapsed := clk.Now() - start
	// Opposite directions are separate links: ~20ms, not ~40ms.
	if elapsed > 35*time.Millisecond {
		t.Errorf("opposite-direction transfers serialized: %v", elapsed)
	}
}

func TestNetworkPanicsOnBadHost(t *testing.T) {
	n := NewNetwork(clock.NewReal(), 2, LinkSpec{})
	for _, pair := range [][2]HostID{{-1, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Transfer(%v) must panic", pair)
				}
			}()
			n.Transfer(pair[0], pair[1], 1)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewNetwork(0 hosts) must panic")
			}
		}()
		NewNetwork(clock.NewReal(), 0, LinkSpec{})
	}()
}

func TestBusChargesAndSerializes(t *testing.T) {
	clk := clock.NewReal()
	b := NewBus(clk, 1e6) // 10kB = 10ms
	start := clk.Now()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Charge(10_000)
		}()
	}
	wg.Wait()
	elapsed := clk.Now() - start
	if elapsed < 25*time.Millisecond {
		t.Errorf("3 serialized bus charges took %v, want ≥ ~30ms", elapsed)
	}
	if busy := b.BusyTime(); busy != 30*time.Millisecond {
		t.Errorf("BusyTime = %v, want 30ms", busy)
	}
}

func TestBusNilAndFree(t *testing.T) {
	var nilBus *Bus
	if nilBus.Charge(1<<20) != 0 || nilBus.BusyTime() != 0 {
		t.Error("nil bus must be free")
	}
	free := NewBus(clock.NewReal(), 0)
	if free.Charge(1<<30) != 0 {
		t.Error("zero-bandwidth bus must be free")
	}
	real := NewBus(clock.NewReal(), 1e9)
	if real.Charge(0) != 0 || real.Charge(-5) != 0 {
		t.Error("non-positive sizes must be free")
	}
}

func TestBusScaledClock(t *testing.T) {
	// With a 100x scaled clock, a 100ms (virtual) charge sleeps ~1ms.
	clk := clock.NewScaled(clock.NewReal(), 100)
	b := NewBus(clk, 1e6)
	realStart := time.Now()
	b.Charge(100_000) // 100ms virtual
	realElapsed := time.Since(realStart)
	if realElapsed > 50*time.Millisecond {
		t.Errorf("scaled charge slept %v real, want ~1ms", realElapsed)
	}
	if b.BusyTime() != 100*time.Millisecond {
		t.Errorf("BusyTime = %v, want 100ms virtual", b.BusyTime())
	}
}

func TestCluster(t *testing.T) {
	clk := clock.NewReal()
	c := NewCluster(clk, ClusterSpec{Hosts: 5, Link: GigabitEthernet, BusBytesPerSec: 400e6})
	if c.Hosts() != 5 {
		t.Fatalf("Hosts = %d", c.Hosts())
	}
	if c.Network().Spec() != GigabitEthernet {
		t.Error("network spec mismatch")
	}
	if c.Bus(0) == nil || c.Bus(4) == nil {
		t.Error("buses must exist")
	}
	if c.Bus(0) == c.Bus(1) {
		t.Error("hosts must have distinct buses")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Bus(out of range) must panic")
			}
		}()
		c.Bus(5)
	}()
}

func TestPaperCluster(t *testing.T) {
	spec := PaperCluster(5)
	if spec.Hosts != 5 || spec.Link != GigabitEthernet || spec.BusBytesPerSec != 400e6 {
		t.Errorf("PaperCluster = %+v", spec)
	}
}
