package channel

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/gc"
	"repro/internal/graph"
	"repro/internal/vt"
)

const (
	prodConn  = graph.ConnID(0)
	consConn  = graph.ConnID(1)
	consConn2 = graph.ConnID(2)
)

func newTestChannel(coll gc.Collector) *Channel {
	c := New(Config{Name: "test", Node: 1, Clock: clock.NewReal(), Collector: coll})
	c.AttachProducer(prodConn)
	c.AttachConsumer(consConn, 1)
	return c
}

func put(t *testing.T, c *Channel, ts vt.Timestamp, size int64) *Item {
	t.Helper()
	it := &Item{TS: ts, Size: size, Payload: int(ts)}
	if _, err := c.Put(prodConn, it); err != nil {
		t.Fatalf("Put(%v): %v", ts, err)
	}
	return it
}

func TestPutGetLatestBasic(t *testing.T) {
	c := newTestChannel(nil)
	put(t, c, 1, 100)
	put(t, c, 2, 100)
	put(t, c, 3, 100)

	res, err := c.GetLatest(consConn)
	if err != nil {
		t.Fatal(err)
	}
	if res.Item.TS != 3 {
		t.Fatalf("got ts %v, want 3 (latest)", res.Item.TS)
	}
	if len(res.Skipped) != 2 || res.Skipped[0].TS != 1 || res.Skipped[1].TS != 2 {
		t.Fatalf("Skipped = %v", res.Skipped)
	}
	if g := c.Guarantee(consConn); g != 3 {
		t.Fatalf("guarantee = %v, want 3", g)
	}
}

func TestGetLatestBlocksUntilPut(t *testing.T) {
	c := newTestChannel(nil)
	got := make(chan vt.Timestamp, 1)
	go func() {
		res, err := c.GetLatest(consConn)
		if err != nil {
			got <- vt.None
			return
		}
		got <- res.Item.TS
	}()
	time.Sleep(5 * time.Millisecond) // let the getter block
	put(t, c, 7, 10)
	select {
	case ts := <-got:
		if ts != 7 {
			t.Fatalf("got %v, want 7", ts)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("GetLatest never woke")
	}
}

func TestGetLatestReportsBlockedTime(t *testing.T) {
	c := newTestChannel(nil)
	done := make(chan GetResult, 1)
	go func() {
		res, _ := c.GetLatest(consConn)
		done <- res
	}()
	time.Sleep(20 * time.Millisecond)
	put(t, c, 1, 10)
	res := <-done
	if res.Blocked < 10*time.Millisecond {
		t.Fatalf("Blocked = %v, want ≥ ~20ms", res.Blocked)
	}
}

func TestGetLatestNeverRegresses(t *testing.T) {
	c := newTestChannel(nil)
	put(t, c, 5, 10)
	if res, _ := c.GetLatest(consConn); res.Item.TS != 5 {
		t.Fatal("first get")
	}
	// A second GetLatest must not return ts 5 again; it blocks for >5.
	got := make(chan vt.Timestamp, 1)
	go func() {
		res, err := c.GetLatest(consConn)
		if err != nil {
			got <- vt.None
			return
		}
		got <- res.Item.TS
	}()
	time.Sleep(5 * time.Millisecond)
	put(t, c, 6, 10)
	if ts := <-got; ts != 6 {
		t.Fatalf("got %v, want 6", ts)
	}
}

func TestGetExact(t *testing.T) {
	c := newTestChannel(nil)
	put(t, c, 1, 10)
	put(t, c, 2, 10)
	res, err := c.GetAt(consConn, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Item.TS != 1 || len(res.Skipped) != 0 {
		t.Fatalf("Get(1) = %+v", res)
	}
	// Guarantee advanced to 1; Get(1) again must fail ErrPassed.
	if _, err := c.GetAt(consConn, 1); !errors.Is(err, ErrPassed) {
		t.Fatalf("replay Get err = %v", err)
	}
	// Get of a skipped-past-by-producer timestamp fails ErrGone.
	if _, err := c.GetAt(consConn, 0); !errors.Is(err, ErrPassed) {
		// ts 0 < guarantee 1 → passed
		t.Fatalf("Get(0) err = %v", err)
	}
}

func TestGetGoneWhenProducerMovedPast(t *testing.T) {
	c := newTestChannel(nil)
	put(t, c, 5, 10)
	// ts 3 was never produced and the producer is already at 5.
	if _, err := c.GetAt(consConn, 3); !errors.Is(err, ErrGone) {
		t.Fatalf("err = %v, want ErrGone", err)
	}
}

func TestPutDuplicateFails(t *testing.T) {
	c := newTestChannel(nil)
	put(t, c, 1, 10)
	if _, err := c.Put(prodConn, &Item{TS: 1}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestUnattachedConnections(t *testing.T) {
	c := newTestChannel(nil)
	if _, err := c.Put(graph.ConnID(99), &Item{TS: 1}); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("unattached put err = %v", err)
	}
	if _, err := c.GetLatest(graph.ConnID(99)); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("unattached get err = %v", err)
	}
	if _, err := c.GetAt(graph.ConnID(99), 1); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("unattached exact get err = %v", err)
	}
}

func TestCloseWakesBlockedGetters(t *testing.T) {
	c := newTestChannel(nil)
	errs := make(chan error, 1)
	go func() {
		_, err := c.GetLatest(consConn)
		errs <- err
	}()
	time.Sleep(5 * time.Millisecond)
	c.Close()
	select {
	case err := <-errs:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake getter")
	}
	if !c.Closed() {
		t.Error("Closed() must report true")
	}
	if _, err := c.Put(prodConn, &Item{TS: 9}); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close err = %v", err)
	}
	c.Close() // idempotent
}

func TestCloseFreesLiveItems(t *testing.T) {
	var freed []vt.Timestamp
	var mu sync.Mutex
	c := New(Config{Name: "t", Clock: clock.NewReal(), OnFree: func(it *Item, _ time.Duration) {
		mu.Lock()
		freed = append(freed, it.TS)
		mu.Unlock()
	}})
	c.AttachProducer(prodConn)
	c.AttachConsumer(consConn, 1)
	put(t, c, 1, 10)
	put(t, c, 2, 10)
	c.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(freed) != 2 {
		t.Fatalf("freed = %v", freed)
	}
	if n, b := c.Occupancy(); n != 0 || b != 0 {
		t.Fatalf("occupancy after close = %d items, %d bytes", n, b)
	}
}

func TestDGCCollectsOnConsumption(t *testing.T) {
	var freed []vt.Timestamp
	var mu sync.Mutex
	c := New(Config{
		Name: "t", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp(),
		OnFree: func(it *Item, _ time.Duration) {
			mu.Lock()
			freed = append(freed, it.TS)
			mu.Unlock()
		},
	})
	c.AttachProducer(prodConn)
	c.AttachConsumer(consConn, 1)
	for ts := vt.Timestamp(1); ts <= 5; ts++ {
		put(t, c, ts, 100)
	}
	res, err := c.GetLatest(consConn)
	if err != nil {
		t.Fatal(err)
	}
	if res.Item.TS != 5 {
		t.Fatalf("consumed %v", res.Item.TS)
	}
	mu.Lock()
	nf := len(freed)
	mu.Unlock()
	// All five items (1..4 skipped + 5 consumed) are dead under DGC with
	// a single consumer at guarantee 5.
	if nf != 5 {
		t.Fatalf("freed %d items, want 5 (%v)", nf, freed)
	}
	if n, b := c.Occupancy(); n != 0 || b != 0 {
		t.Fatalf("occupancy = %d/%d after full collection", n, b)
	}
}

func TestDGCWaitsForSlowestConsumer(t *testing.T) {
	c := New(Config{Name: "t", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp()})
	c.AttachProducer(prodConn)
	c.AttachConsumer(consConn, 1)
	c.AttachConsumer(consConn2, 1)
	for ts := vt.Timestamp(1); ts <= 3; ts++ {
		put(t, c, ts, 100)
	}
	if _, err := c.GetLatest(consConn); err != nil { // fast consumer at 3
		t.Fatal(err)
	}
	// Slow consumer hasn't consumed: nothing may be freed.
	if n, _ := c.Occupancy(); n != 3 {
		t.Fatalf("occupancy = %d, want 3 (slow consumer holds items)", n)
	}
	if _, err := c.GetLatest(consConn2); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.Occupancy(); n != 0 {
		t.Fatalf("occupancy = %d, want 0 after both consumed", n)
	}
}

func TestDetachConsumerReleasesItems(t *testing.T) {
	c := New(Config{Name: "t", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp()})
	c.AttachProducer(prodConn)
	c.AttachConsumer(consConn, 1)
	c.AttachConsumer(consConn2, 1)
	put(t, c, 1, 100)
	if _, err := c.GetLatest(consConn); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.Occupancy(); n != 1 {
		t.Fatal("second consumer must retain the item")
	}
	c.DetachConsumer(consConn2)
	if n, _ := c.Occupancy(); n != 0 {
		t.Fatal("detach must release retained items")
	}
}

func TestGetGoneAfterCollection(t *testing.T) {
	c := New(Config{Name: "t", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp()})
	c.AttachProducer(prodConn)
	c.AttachConsumer(consConn, 1)
	c.AttachConsumer(consConn2, 1)
	put(t, c, 1, 10)
	put(t, c, 2, 10)
	// Consumer 1 takes latest (2): item 1 skipped but retained for c2.
	if _, err := c.GetLatest(consConn); err != nil {
		t.Fatal(err)
	}
	// Consumer 2 also takes latest: item 1 now dead and freed.
	if res, err := c.GetLatest(consConn2); err != nil || res.Item.TS != 2 {
		t.Fatal(err)
	}
	// A third consumer attached late cannot get item 1: it is gone.
	c3 := graph.ConnID(7)
	c.AttachConsumer(c3, 1)
	if _, err := c.GetAt(c3, 1); !errors.Is(err, ErrGone) {
		t.Fatalf("err = %v, want ErrGone", err)
	}
}

func TestCapacityBlocksPut(t *testing.T) {
	c := New(Config{Name: "t", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp(), Capacity: 2})
	c.AttachProducer(prodConn)
	c.AttachConsumer(consConn, 1)
	put(t, c, 1, 10)
	put(t, c, 2, 10)
	done := make(chan time.Duration, 1)
	go func() {
		blocked, err := c.Put(prodConn, &Item{TS: 3, Size: 10})
		if err != nil {
			done <- -1
			return
		}
		done <- blocked
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("put must block while full")
	default:
	}
	// Consuming frees both items (DGC) and unblocks the put.
	if _, err := c.GetLatest(consConn); err != nil {
		t.Fatal(err)
	}
	select {
	case blocked := <-done:
		if blocked < 10*time.Millisecond {
			t.Fatalf("blocked = %v, want ≥ ~20ms", blocked)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("put never unblocked")
	}
}

func TestStatsAndOccupancy(t *testing.T) {
	c := newTestChannel(gc.NewDeadTimestamp())
	put(t, c, 1, 100)
	put(t, c, 2, 50)
	if n, b := c.Occupancy(); n != 2 || b != 150 {
		t.Fatalf("occupancy = %d/%d", n, b)
	}
	if _, err := c.GetLatest(consConn); err != nil {
		t.Fatal(err)
	}
	puts, frees := c.Stats()
	if puts != 2 || frees != 2 {
		t.Fatalf("stats = %d/%d", puts, frees)
	}
	if g := c.Guarantee(graph.ConnID(42)); g != vt.None {
		t.Fatalf("unknown conn guarantee = %v", g)
	}
}

func TestFreedItemDropsPayload(t *testing.T) {
	c := newTestChannel(gc.NewDeadTimestamp())
	it := put(t, c, 1, 100)
	if _, err := c.GetLatest(consConn); err != nil {
		t.Fatal(err)
	}
	if it.Payload != nil {
		t.Error("freed item must drop its payload")
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	c := New(Config{Name: "t", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp()})
	const producers = 1
	const consumers = 3
	for p := 0; p < producers; p++ {
		c.AttachProducer(graph.ConnID(p))
	}
	for k := 0; k < consumers; k++ {
		c.AttachConsumer(graph.ConnID(100+k), 1)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ts := vt.Timestamp(1); ts <= 200; ts++ {
			if _, err := c.Put(graph.ConnID(0), &Item{TS: ts, Size: 1}); err != nil {
				t.Errorf("put: %v", err)
				return
			}
		}
		c.Close()
	}()
	for k := 0; k < consumers; k++ {
		wg.Add(1)
		go func(conn graph.ConnID) {
			defer wg.Done()
			last := vt.None
			for {
				res, err := c.GetLatest(conn)
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if res.Item.TS <= last {
					t.Errorf("non-monotone consumption: %v after %v", res.Item.TS, last)
					return
				}
				last = res.Item.TS
			}
		}(graph.ConnID(100 + k))
	}
	wg.Wait()
	if n, b := c.Occupancy(); n != 0 || b != 0 {
		t.Fatalf("leftover occupancy %d/%d", n, b)
	}
}

func TestWouldBeDead(t *testing.T) {
	c := newTestChannel(gc.NewDeadTimestamp())
	c.AttachConsumer(consConn2, 1)
	// No consumption yet: nothing is provably dead.
	if c.WouldBeDead(1) {
		t.Error("ts 1 must not be dead before any consumption")
	}
	put(t, c, 1, 10)
	put(t, c, 2, 10)
	if _, err := c.GetLatest(consConn); err != nil { // consumer 1 at 2
		t.Fatal(err)
	}
	// Consumer 2 still at None: ts ≤ 2 not provably dead.
	if c.WouldBeDead(1) {
		t.Error("slow consumer keeps ts 1 potentially alive")
	}
	if _, err := c.GetLatest(consConn2); err != nil { // consumer 2 at 2
		t.Fatal(err)
	}
	if !c.WouldBeDead(1) || !c.WouldBeDead(2) {
		t.Error("ts ≤ 2 must be dead once all consumers passed")
	}
	if c.WouldBeDead(3) {
		t.Error("future ts must not be dead")
	}
	c.Close()
	if !c.WouldBeDead(99) {
		t.Error("everything is dead on a closed channel")
	}
}

func TestWouldBeDeadNoConsumers(t *testing.T) {
	c := New(Config{Name: "t", Clock: clock.NewReal()})
	c.AttachProducer(prodConn)
	if c.WouldBeDead(1) {
		t.Error("a channel without consumers must not declare items dead")
	}
}
