package channel

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/gc"
	"repro/internal/graph"
	"repro/internal/vt"
)

func newWindowChannel(t *testing.T, width int) *Channel {
	t.Helper()
	c := New(Config{Name: "w", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp()})
	c.AttachProducer(prodConn)
	c.AttachConsumerWindow(consConn, width)
	return c
}

func TestWindowDeliversTrailingItems(t *testing.T) {
	c := newWindowChannel(t, 3)
	for ts := vt.Timestamp(1); ts <= 5; ts++ {
		put(t, c, ts, 10)
	}
	res, err := c.GetLatest(consConn)
	if err != nil {
		t.Fatal(err)
	}
	if res.Item.TS != 5 {
		t.Fatalf("head = %v", res.Item.TS)
	}
	// Window of 3: head 5 plus trailing 3, 4.
	if len(res.Window) != 2 || res.Window[0].TS != 3 || res.Window[1].TS != 4 {
		t.Fatalf("window = %v", res.Window)
	}
	// Items 1, 2 are skipped (outside the window).
	if len(res.Skipped) != 2 || res.Skipped[0].TS != 1 || res.Skipped[1].TS != 2 {
		t.Fatalf("skipped = %v", res.Skipped)
	}
	// DGC frees ts ≤ guarantee = 3: items 1, 2, 3 gone; 4, 5 retained
	// for the next window.
	if n, _ := c.Occupancy(); n != 2 {
		t.Fatalf("occupancy = %d, want 2 retained", n)
	}
}

func TestWindowSlidesAcrossCalls(t *testing.T) {
	c := newWindowChannel(t, 3)
	put(t, c, 1, 10)
	put(t, c, 2, 10)
	if res, err := c.GetLatest(consConn); err != nil || res.Item.TS != 2 {
		t.Fatalf("first head: %v %v", res.Item.TS, err)
	}
	put(t, c, 3, 10)
	res, err := c.GetLatest(consConn)
	if err != nil {
		t.Fatal(err)
	}
	if res.Item.TS != 3 {
		t.Fatalf("second head = %v", res.Item.TS)
	}
	// Window covers 1, 2 (both still live: guarantee after first call
	// was 0).
	if len(res.Window) != 2 || res.Window[0].TS != 1 || res.Window[1].TS != 2 {
		t.Fatalf("window = %v", res.Window)
	}
	if len(res.Skipped) != 0 {
		t.Fatalf("skipped = %v", res.Skipped)
	}
}

func TestWindowWidthOnePreservesOldSemantics(t *testing.T) {
	c := newWindowChannel(t, 1)
	put(t, c, 1, 10)
	put(t, c, 2, 10)
	res, err := c.GetLatest(consConn)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Window) != 0 {
		t.Fatalf("width-1 window must be empty, got %v", res.Window)
	}
	if n, _ := c.Occupancy(); n != 0 {
		t.Fatalf("occupancy = %d, want full collection", n)
	}
}

func TestWindowPartiallyFilled(t *testing.T) {
	c := newWindowChannel(t, 4)
	put(t, c, 1, 10)
	res, err := c.GetLatest(consConn)
	if err != nil {
		t.Fatal(err)
	}
	if res.Item.TS != 1 || len(res.Window) != 0 || len(res.Skipped) != 0 {
		t.Fatalf("sparse window: %+v", res)
	}
}

func TestWindowTryGetLatest(t *testing.T) {
	c := newWindowChannel(t, 2)
	if _, ok, err := c.TryGetLatest(consConn); err != nil || ok {
		t.Fatal("empty try must miss")
	}
	put(t, c, 1, 10)
	put(t, c, 2, 10)
	res, ok, err := c.TryGetLatest(consConn)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if res.Item.TS != 2 || len(res.Window) != 1 || res.Window[0].TS != 1 {
		t.Fatalf("try window: %+v", res)
	}
	// Same head is not re-delivered.
	if _, ok, _ := c.TryGetLatest(consConn); ok {
		t.Fatal("stale head re-delivered")
	}
}

func TestWindowMixedConsumers(t *testing.T) {
	// A width-1 consumer and a width-3 consumer share the channel; the
	// window consumer's retention governs collection.
	c := New(Config{Name: "w", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp()})
	c.AttachProducer(prodConn)
	c.AttachConsumer(consConn, 1)
	c.AttachConsumerWindow(consConn2, 3)
	for ts := vt.Timestamp(1); ts <= 5; ts++ {
		put(t, c, ts, 10)
	}
	if _, err := c.GetLatest(consConn); err != nil { // plain: guarantee 5
		t.Fatal(err)
	}
	if n, _ := c.Occupancy(); n != 5 {
		t.Fatalf("window consumer must retain everything, occupancy %d", n)
	}
	if _, err := c.GetLatest(consConn2); err != nil { // window: guarantee 3
		t.Fatal(err)
	}
	// min(5, 3) = 3 → items 1..3 freed, 4, 5 retained.
	if n, _ := c.Occupancy(); n != 2 {
		t.Fatalf("occupancy = %d, want 2", n)
	}
}

func TestAttachConsumerWindowValidation(t *testing.T) {
	c := New(Config{Name: "w", Clock: clock.NewReal()})
	defer func() {
		if recover() == nil {
			t.Fatal("width 0 must panic")
		}
	}()
	c.AttachConsumerWindow(graph.ConnID(1), 0)
}

// TestWindowTryGetLatestWideWindow exercises the non-blocking path with a
// window wider than the basic test's width 2: window membership, skip
// marking, guarantee trailing, and retention must all match GetLatest.
func TestWindowTryGetLatestWideWindow(t *testing.T) {
	c := newWindowChannel(t, 3)
	for ts := vt.Timestamp(1); ts <= 5; ts++ {
		put(t, c, ts, 10)
	}
	res, ok, err := c.TryGetLatest(consConn)
	if err != nil || !ok {
		t.Fatalf("try must hit: ok=%v err=%v", ok, err)
	}
	if res.Item.TS != 5 {
		t.Fatalf("head = %v, want 5", res.Item.TS)
	}
	if len(res.Window) != 2 || res.Window[0].TS != 3 || res.Window[1].TS != 4 {
		t.Fatalf("window = %+v, want trailing [3 4]", res.Window)
	}
	if len(res.Skipped) != 2 || res.Skipped[0].TS != 1 || res.Skipped[1].TS != 2 {
		t.Fatalf("skipped = %+v, want [1 2]", res.Skipped)
	}
	// The guarantee trails the head by width-1: head 5 → guarantee 3.
	if g := c.Guarantee(consConn); g != 3 {
		t.Fatalf("guarantee = %v, want 3", g)
	}
	// DGC frees ts ≤ 3; items 4, 5 are retained for the next window.
	if n, _ := c.Occupancy(); n != 2 {
		t.Fatalf("occupancy = %d, want 2 retained", n)
	}
	// Nothing newer than the last head: miss without state change.
	if _, ok, _ := c.TryGetLatest(consConn); ok {
		t.Fatal("stale head re-delivered")
	}
	if g := c.Guarantee(consConn); g != 3 {
		t.Fatalf("miss moved the guarantee to %v", g)
	}
}

// TestWindowTryGetLatestSlides checks the retained trailing items appear
// in the next non-blocking window, i.e. try-gets slide exactly like
// blocking gets.
func TestWindowTryGetLatestSlides(t *testing.T) {
	c := newWindowChannel(t, 3)
	for ts := vt.Timestamp(1); ts <= 5; ts++ {
		put(t, c, ts, 10)
	}
	if _, ok, err := c.TryGetLatest(consConn); err != nil || !ok {
		t.Fatal("first try must hit")
	}
	put(t, c, 6, 10)
	res, ok, err := c.TryGetLatest(consConn)
	if err != nil || !ok {
		t.Fatal("second try must hit")
	}
	if res.Item.TS != 6 {
		t.Fatalf("head = %v, want 6", res.Item.TS)
	}
	// 4 and 5 were retained by the first call's trailing guarantee and
	// now form the window; nothing was skipped.
	if len(res.Window) != 2 || res.Window[0].TS != 4 || res.Window[1].TS != 5 {
		t.Fatalf("window = %+v, want [4 5]", res.Window)
	}
	if len(res.Skipped) != 0 {
		t.Fatalf("skipped = %+v, want none", res.Skipped)
	}
	if g := c.Guarantee(consConn); g != 4 {
		t.Fatalf("guarantee = %v, want 4", g)
	}
}

// TestWindowTryGetLatestSparse: a try-get with fewer live items than the
// window width delivers a partial window, and the guarantee still trails
// by width-1 (going negative territory is fine — vt.None anchors it).
func TestWindowTryGetLatestSparse(t *testing.T) {
	c := newWindowChannel(t, 4)
	put(t, c, 1, 10)
	put(t, c, 2, 10)
	res, ok, err := c.TryGetLatest(consConn)
	if err != nil || !ok {
		t.Fatal("try must hit")
	}
	if res.Item.TS != 2 || len(res.Window) != 1 || res.Window[0].TS != 1 {
		t.Fatalf("sparse try: head=%v window=%+v", res.Item.TS, res.Window)
	}
	if len(res.Skipped) != 0 {
		t.Fatalf("skipped = %+v", res.Skipped)
	}
	// Both items stay live: guarantee 2-4+1 = -1 < 1.
	if n, _ := c.Occupancy(); n != 2 {
		t.Fatalf("occupancy = %d, want 2", n)
	}
}
