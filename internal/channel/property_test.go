package channel

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/clock"
	"repro/internal/gc"
	"repro/internal/graph"
	"repro/internal/vt"
)

// refModel is a map-based reference implementation of a DGC channel used
// to check invariants against random operation sequences:
//
//   - TryGetLatest returns the maximum live timestamp above the
//     consumer's guarantee, and its skip set is exactly the live
//     timestamps strictly between.
//   - Guarantees advance monotonically.
//   - Under DGC an item is freed exactly when every consumer guarantee
//     has reached its timestamp.
//   - Occupancy always equals the reference's live set.
type refModel struct {
	live       map[vt.Timestamp]int64 // ts → size
	guarantees map[graph.ConnID]vt.Timestamp
}

func (m *refModel) minGuarantee() vt.Timestamp {
	min := vt.Infinity
	for _, g := range m.guarantees {
		if g < min {
			min = g
		}
	}
	return min
}

// sweep removes reference items dead under DGC semantics.
func (m *refModel) sweep() {
	min := m.minGuarantee()
	if min == vt.None {
		return
	}
	for ts := range m.live {
		if ts <= min {
			delete(m.live, ts)
		}
	}
}

func (m *refModel) maxLiveAbove(g vt.Timestamp) vt.Timestamp {
	best := vt.None
	for ts := range m.live {
		if ts > g && ts > best {
			best = ts
		}
	}
	return best
}

func TestChannelMatchesReferenceModel(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		consumers := []graph.ConnID{10, 11, 12}
		const prod = graph.ConnID(0)

		ch := New(Config{Name: "prop", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp()})
		ch.AttachProducer(prod)
		ref := &refModel{live: map[vt.Timestamp]int64{}, guarantees: map[graph.ConnID]vt.Timestamp{}}
		for _, c := range consumers {
			ch.AttachConsumer(c, 1)
			ref.guarantees[c] = vt.None
		}

		nextTS := vt.Timestamp(0)
		for round := 0; round < 1500; round++ {
			switch op := rng.Intn(10); {
			case op < 5: // put a fresh timestamp
				nextTS++
				size := int64(rng.Intn(1000) + 1)
				if _, err := ch.Put(prod, &Item{TS: nextTS, Size: size}); err != nil {
					t.Fatalf("seed %d round %d: put: %v", seed, round, err)
				}
				ref.live[nextTS] = size
				ref.sweep()

			case op < 6: // duplicate put must fail and not disturb state
				if nextTS == 0 {
					continue
				}
				dup := vt.Timestamp(rng.Int63n(int64(nextTS)) + 1)
				_, err := ch.Put(prod, &Item{TS: dup, Size: 1})
				if _, live := ref.live[dup]; live {
					if !errors.Is(err, ErrDuplicate) {
						t.Fatalf("seed %d round %d: dup put of live %v err = %v", seed, round, dup, err)
					}
				} else if err == nil {
					// Reinserting a collected timestamp is accepted by
					// the channel (it only tracks live duplicates), so
					// mirror it.
					ref.live[dup] = 1
					ref.sweep()
				}

			case op < 9: // TryGetLatest on a random consumer
				c := consumers[rng.Intn(len(consumers))]
				want := ref.maxLiveAbove(ref.guarantees[c])
				res, ok, err := ch.TryGetLatest(c)
				if err != nil {
					t.Fatalf("seed %d round %d: try: %v", seed, round, err)
				}
				if (want != vt.None) != ok {
					t.Fatalf("seed %d round %d: try ok=%v but reference wants %v (guar %v, live %v)",
						seed, round, ok, want, ref.guarantees[c], ref.live)
				}
				if !ok {
					continue
				}
				if res.Item.TS != want {
					t.Fatalf("seed %d round %d: got %v, reference wants %v", seed, round, res.Item.TS, want)
				}
				// Skip set: live strictly between guarantee and want.
				skipWant := 0
				for ts := range ref.live {
					if ts > ref.guarantees[c] && ts < want {
						skipWant++
					}
				}
				if len(res.Skipped) != skipWant {
					t.Fatalf("seed %d round %d: skipped %d, want %d", seed, round, len(res.Skipped), skipWant)
				}
				if want <= ref.guarantees[c] {
					t.Fatalf("guarantee would regress")
				}
				ref.guarantees[c] = want
				ref.sweep()

			default: // occupancy audit
				items, bytes := ch.Occupancy()
				var refBytes int64
				for _, s := range ref.live {
					refBytes += s
				}
				if items != len(ref.live) || bytes != refBytes {
					t.Fatalf("seed %d round %d: occupancy %d/%d, reference %d/%d",
						seed, round, items, bytes, len(ref.live), refBytes)
				}
			}
		}
		// Final audit.
		items, _ := ch.Occupancy()
		if items != len(ref.live) {
			t.Fatalf("seed %d: final occupancy %d vs reference %d", seed, items, len(ref.live))
		}
	}
}
