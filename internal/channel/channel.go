// Package channel implements the Stampede channel abstraction: a
// system-wide named container of timestamped items supporting non-FIFO,
// out-of-order access (§1 of the paper). Channels buffer the production
// differential between pipeline stages; consumers typically request the
// *latest* item, skipping over stale data — the behaviour that creates the
// wasted items ARU exists to prevent.
//
// Each consumer of a channel holds a private connection with a
// monotonically advancing consumption guarantee: after consuming the item
// at timestamp T it will never request an item at or before T again. The
// guarantees feed the garbage collector (package gc), which reclaims items
// no consumer can name anymore.
//
// Channel is a buffer.Buffer backend (registered as "channel"): the
// condvar pair, clock-aware waits, attachment maps, capacity blocking, and
// puts/frees/liveBytes accounting all live in the embedded buffer.Base;
// this package adds only the channel discipline — the timestamp-indexed
// item map, the sorted live set, get-latest/sliding-window delivery, and
// guarantee-driven garbage collection.
package channel

import (
	"fmt"
	"time"

	"repro/internal/buffer"
	"repro/internal/graph"
	"repro/internal/vt"
)

// Errors returned by channel operations. They alias the shared buffer
// errors, so errors.Is matches across packages.
var (
	// ErrClosed reports an operation on a closed channel.
	ErrClosed = buffer.ErrClosed
	// ErrDuplicate reports a put of a timestamp already present.
	ErrDuplicate = buffer.ErrDuplicate
	// ErrPassed reports a get of a timestamp the connection's guarantee
	// has already moved past.
	ErrPassed = buffer.ErrPassed
	// ErrGone reports a get of an item the collector freed.
	ErrGone = buffer.ErrGone
	// ErrNotAttached reports use of a connection id that was never
	// attached.
	ErrNotAttached = buffer.ErrNotAttached
)

// Item is one timestamped data element stored in a channel. It is the
// shared buffer item type: all backends store the same struct, so the
// runtime's put/get paths never convert between per-backend items.
type Item = buffer.Item

// Config configures a channel.
type Config = buffer.Config

// GetResult is the outcome of a successful get.
type GetResult = buffer.GetResult

func init() {
	buffer.Register("channel", buffer.Backend{
		New:  func(cfg Config) (buffer.Buffer, error) { return New(cfg), nil },
		Caps: caps,
	})
}

var caps = buffer.Caps{
	Discipline: buffer.Latest,
	Windows:    true,
	GetAt:      true,
	TryGet:     true,
}

// Channel is a timestamped buffer. All methods are safe for concurrent
// use.
//
// An item's lifecycle is tracked by the (items, live) pair: a timestamp in
// items but absent from live is a tombstone — the collector freed it, and
// Get reports ErrGone rather than "not yet produced".
type Channel struct {
	buffer.Base

	// items and live are guarded by Base.Mu.
	items  map[vt.Timestamp]*Item
	live   *vt.Set
	maxPut vt.Timestamp

	// scratchG and scratchDead are per-channel scratch buffers reused by
	// every collection sweep (guarantee vector and dead-timestamp list),
	// keeping the per-advance GC hop allocation-free. Both are only
	// touched under Base.Mu.
	scratchG    []vt.Timestamp
	scratchDead []vt.Timestamp
}

// New creates a channel.
func New(cfg Config) *Channel {
	c := &Channel{
		items:  make(map[vt.Timestamp]*Item),
		live:   vt.NewSet(),
		maxPut: vt.None,
	}
	c.Base.Init(cfg, c.live.Len)
	return c
}

// Caps reports the channel backend's capabilities.
func (c *Channel) Caps() buffer.Caps { return caps }

// AttachConsumer registers an input connection with the given
// sliding-window width (1 for ordinary consumers). It must happen before
// the consumer's first get; attaching after items were already collected
// is fine — the new consumer simply starts at the present.
func (c *Channel) AttachConsumer(conn graph.ConnID, window int) error {
	if window < 1 {
		return fmt.Errorf("%w: window width %d < 1 on %q", buffer.ErrUnsupported, window, c.Name())
	}
	c.Mu.Lock()
	defer c.Mu.Unlock()
	c.AttachConsumerLocked(conn, window)
	return nil
}

// AttachConsumerWindow registers a consumer that analyzes a sliding
// window of width n ≥ 1 (the paper's gesture-recognition motif: "a
// sliding window over a video stream"). After consuming the item at
// timestamp T the consumer may still re-read items in (T-n, T], so its
// collection guarantee trails the head by n-1 timestamps. n < 1 panics.
func (c *Channel) AttachConsumerWindow(conn graph.ConnID, n int) {
	if err := c.AttachConsumer(conn, n); err != nil {
		panic(fmt.Sprintf("channel: window width %d < 1 on %q", n, c.Name()))
	}
}

// DetachConsumer removes a consumer connection. Its guarantee becomes
// Infinity for collection purposes: it will never request anything again.
func (c *Channel) DetachConsumer(conn graph.ConnID) {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	if _, ok := c.Consumers[conn]; !ok {
		return
	}
	delete(c.Consumers, conn)
	c.Coll.Forget(c.Node(), conn)
	// Any frees below wake capacity waiters via freeLocked; parked
	// consumers are unaffected by a detach.
	c.collectLocked()
}

// FailProducer removes a producer attachment that failed permanently.
// Once every producer has failed, blocked and future gets report
// ErrPeerFailed instead of waiting forever — items already live remain
// consumable first via TryGet-style paths, but a blocking get for data
// that can never arrive is unblocked with the typed condition.
func (c *Channel) FailProducer(conn graph.ConnID) {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	if c.FailProducerLocked(conn) {
		c.BroadcastConsumersLocked()
	}
}

// FailConsumer removes a consumer attachment that failed permanently.
// Like DetachConsumer its guarantee becomes infinite for collection; in
// addition the failure is recorded so that, once every consumer has
// failed, producers blocked on capacity report ErrPeerFailed and
// WouldBeDead turns true (production for a dead audience is wasted by
// definition).
func (c *Channel) FailConsumer(conn graph.ConnID) {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	if _, ok := c.Consumers[conn]; !ok {
		return
	}
	delete(c.Consumers, conn)
	c.Coll.Forget(c.Node(), conn)
	c.MarkConsumerFailedLocked()
	c.collectLocked()
	if c.ConsumersExhaustedLocked() {
		c.BroadcastFullLocked()
	}
}

// Put inserts an item. It blocks while a bounded channel is full and
// returns ErrClosed/ErrDuplicate on those conditions. The returned
// duration is the time spent blocked on capacity.
func (c *Channel) Put(conn graph.ConnID, it *Item) (time.Duration, error) {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	if err := c.CheckProducerLocked(conn); err != nil {
		return 0, err
	}
	blocked, err := c.AwaitCapacityLocked()
	if err != nil {
		return blocked, err
	}
	if c.ClosedLocked() {
		return blocked, ErrClosed
	}
	if _, dup := c.items[it.TS]; dup {
		return blocked, fmt.Errorf("%w: %v on %q", ErrDuplicate, it.TS, c.Name())
	}
	c.items[it.TS] = it
	c.live.Add(it.TS)
	c.AccountPutLocked(it)
	if it.TS > c.maxPut {
		c.maxPut = it.TS
	}
	// A put may itself complete a collection condition (e.g. the global
	// virtual time advanced elsewhere), so sweep opportunistically; any
	// frees wake capacity waiters inside freeLocked.
	c.collectLocked()
	c.WakeConsumersLocked()
	return blocked, nil
}

// PutBatch inserts items in order under one lock acquisition, stopping
// at the first failing item (applied counts the prefix that took
// effect). Collection and consumer wakeups are amortized to once per
// batch; when a bounded channel fills mid-batch the applied prefix is
// published (and consumers woken) before the producer parks, so the
// consumers that must free capacity can see the items already inserted.
func (c *Channel) PutBatch(conn graph.ConnID, items []*Item) (int, time.Duration, error) {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	if err := c.CheckProducerLocked(conn); err != nil {
		return 0, 0, err
	}
	var blocked time.Duration
	applied, flushed := 0, 0
	flush := func() {
		if applied > flushed {
			c.AccountPutBatchLocked(items[flushed:applied])
			flushed = applied
			c.collectLocked()
			c.WakeConsumersLocked()
		}
	}
	var err error
	for _, it := range items {
		if c.SealedLocked() {
			err = fmt.Errorf("%w: put into sealed %q", buffer.ErrDraining, c.Name())
			break
		}
		if c.AtCapacityLocked() {
			flush()
			var d time.Duration
			d, err = c.AwaitCapacityLocked()
			blocked += d
			if err != nil {
				break
			}
		}
		if c.ClosedLocked() {
			err = ErrClosed
			break
		}
		if _, dup := c.items[it.TS]; dup {
			err = fmt.Errorf("%w: %v on %q", ErrDuplicate, it.TS, c.Name())
			break
		}
		c.items[it.TS] = it
		c.live.Add(it.TS)
		if it.TS > c.maxPut {
			c.maxPut = it.TS
		}
		applied++
	}
	flush()
	return applied, blocked, err
}

// Get blocks until an item newer than the connection's guarantee is
// available and consumes the newest such item, advancing the guarantee and
// recording everything in between as skipped. This is the "threads always
// request the latest item" discipline the ARU algorithm is predicated on
// (§3.3.3).
func (c *Channel) Get(conn graph.ConnID) (GetResult, error) {
	return c.GetLatest(conn)
}

// GetLatest is Get under its historical Stampede name.
func (c *Channel) GetLatest(conn graph.ConnID) (GetResult, error) {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	cs, err := c.ConsumerLocked(conn)
	if err != nil {
		return GetResult{}, err
	}
	start := c.Clock().Now()
	for {
		if newest := c.live.Max(); newest > cs.LastSeen {
			res := c.deliverLocked(cs, newest)
			res.Blocked = c.Clock().Now() - start
			return res, nil
		}
		// Sealed with nothing fresh: no new item can ever arrive, so the
		// consumer's flush is complete — terminate like a close.
		if c.ClosedLocked() || c.SealedLocked() {
			return GetResult{Blocked: c.Clock().Now() - start}, ErrClosed
		}
		if c.ProducersExhaustedLocked() {
			return GetResult{Blocked: c.Clock().Now() - start}, fmt.Errorf("%w: all producers of %q failed", buffer.ErrPeerFailed, c.Name())
		}
		c.WaitConsumer()
	}
}

// deliverLocked hands the item at newest to the consumer as a window
// head: trailing live items within the window are re-delivered, older
// unseen items are marked skipped, and the consumer's guarantee advances
// to newest-(window-1). Both passes walk the sorted live set in place
// (vt.Set.AscendRange): the skip-free, window-1 fast path touches no
// intermediate storage at all. The Skipped/Window slices are backed by
// the connection's scratch buffers — valid until its next get — so
// windowed and skipping gets are allocation-free in steady state.
func (c *Channel) deliverLocked(cs *buffer.Consumer, newest vt.Timestamp) GetResult {
	var res GetResult
	windowStart := newest - cs.Window + 1
	// Skipped: unseen live items older than the window, i.e.
	// (lastSeen, windowStart) — windowStart ≤ newest always holds.
	cs.SkippedScratch = cs.SkippedScratch[:0]
	c.live.AscendRange(cs.LastSeen+1, windowStart, func(ts vt.Timestamp) bool {
		cs.SkippedScratch = append(cs.SkippedScratch, buffer.Snapshot(c.items[ts]))
		return true
	})
	if len(cs.SkippedScratch) > 0 {
		res.Skipped = cs.SkippedScratch
	}
	// Window members: [windowStart, newest), including previously seen
	// items the window may re-read.
	cs.WindowScratch = cs.WindowScratch[:0]
	c.live.AscendRange(windowStart, newest, func(ts vt.Timestamp) bool {
		cs.WindowScratch = append(cs.WindowScratch, buffer.Snapshot(c.items[ts]))
		return true
	})
	if len(cs.WindowScratch) > 0 {
		res.Window = cs.WindowScratch
	}
	res.Item = buffer.Snapshot(c.items[newest])
	cs.LastSeen = newest
	c.NoteDeliveredLocked()
	// The consumer will never request ≤ windowStart again: the next
	// head is at least newest+1, so the next window starts at least at
	// windowStart+1.
	c.advanceLocked(cs, windowStart)
	return res
}

// GetBatch consumes up to len(dst) unseen live items oldest-first under
// one lock acquisition, blocking only until the first is available. It
// is the channel's lossless drain: unlike Get, nothing is marked
// skipped — every delivered item counts as consumed — and the guarantee
// advances only past the delivered prefix, so items beyond the batch
// stay live for the next call. Windowed consumers (re-reading trailing
// items would conflict with the drain's guarantee advance) are rejected
// with ErrUnsupported.
func (c *Channel) GetBatch(conn graph.ConnID, dst []GetResult) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	c.Mu.Lock()
	defer c.Mu.Unlock()
	cs, err := c.ConsumerLocked(conn)
	if err != nil {
		return 0, err
	}
	if cs.Window > 1 {
		return 0, fmt.Errorf("%w: batch get on windowed consumer of %q", buffer.ErrUnsupported, c.Name())
	}
	start := c.Clock().Now()
	for {
		if c.live.Max() > cs.LastSeen {
			n := 0
			c.live.AscendRange(cs.LastSeen+1, vt.Infinity, func(ts vt.Timestamp) bool {
				if n == len(dst) {
					return false
				}
				dst[n] = GetResult{Item: buffer.Snapshot(c.items[ts])}
				n++
				return true
			})
			newest := dst[n-1].Item.TS
			cs.LastSeen = newest
			c.NoteDeliveredNLocked(n)
			c.advanceLocked(cs, newest)
			dst[0].Blocked = c.Clock().Now() - start
			return n, nil
		}
		if c.ClosedLocked() || c.SealedLocked() {
			return 0, ErrClosed
		}
		if c.ProducersExhaustedLocked() {
			return 0, fmt.Errorf("%w: all producers of %q failed", buffer.ErrPeerFailed, c.Name())
		}
		c.WaitConsumer()
	}
}

// TryGet is the non-blocking variant of Get: if an item newer than the
// connection's guarantee is available it is consumed exactly as Get
// would, otherwise ok is false and nothing changes. Stages that reuse
// their previous input when no fresh one exists (the tracker's detectors
// reusing the current histogram model) are built on it.
func (c *Channel) TryGet(conn graph.ConnID) (res GetResult, ok bool, err error) {
	return c.TryGetLatest(conn)
}

// TryGetLatest is TryGet under its historical Stampede name.
func (c *Channel) TryGetLatest(conn graph.ConnID) (res GetResult, ok bool, err error) {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	cs, err := c.ConsumerLocked(conn)
	if err != nil {
		return GetResult{}, false, err
	}
	if c.ClosedLocked() {
		return GetResult{}, false, ErrClosed
	}
	newest := c.live.Max()
	if newest <= cs.LastSeen {
		if c.SealedLocked() {
			// Nothing fresh can ever arrive in a sealed channel: polling
			// consumers terminate here instead of spinning on ok=false.
			return GetResult{}, false, ErrClosed
		}
		if c.ProducersExhaustedLocked() {
			return GetResult{}, false, fmt.Errorf("%w: all producers of %q failed", buffer.ErrPeerFailed, c.Name())
		}
		return GetResult{}, false, nil
	}
	return c.deliverLocked(cs, newest), true, nil
}

// GetAt blocks until the item at exactly ts is available and consumes it.
// It fails with ErrPassed if the connection's guarantee has moved past ts,
// and with ErrGone if the item existed but was collected (possible when
// another consumer's skip pattern let the collector reclaim it first).
// Unlike Get, GetAt does not mark intermediate items skipped; it is the
// primitive for stages that need corresponding timestamps rather than
// freshest data.
func (c *Channel) GetAt(conn graph.ConnID, ts vt.Timestamp) (GetResult, error) {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	cs, err := c.ConsumerLocked(conn)
	if err != nil {
		return GetResult{}, err
	}
	start := c.Clock().Now()
	for {
		if ts <= cs.Guarantee {
			return GetResult{Blocked: c.Clock().Now() - start}, fmt.Errorf("%w: %v ≤ guarantee on %q", ErrPassed, ts, c.Name())
		}
		if it, present := c.items[ts]; present {
			if !c.live.Contains(ts) {
				return GetResult{Blocked: c.Clock().Now() - start}, fmt.Errorf("%w: %v on %q", ErrGone, ts, c.Name())
			}
			res := GetResult{Item: buffer.Snapshot(it), Blocked: c.Clock().Now() - start}
			if ts > cs.LastSeen {
				cs.LastSeen = ts
			}
			c.NoteDeliveredLocked()
			c.advanceLocked(cs, ts-cs.Window+1)
			return res, nil
		}
		// The item may never have existed but already be unreachable: a
		// producer has moved past it.
		if c.maxPut > ts {
			return GetResult{Blocked: c.Clock().Now() - start}, fmt.Errorf("%w: %v on %q", ErrGone, ts, c.Name())
		}
		if c.ClosedLocked() || c.SealedLocked() {
			return GetResult{Blocked: c.Clock().Now() - start}, ErrClosed
		}
		if c.ProducersExhaustedLocked() {
			return GetResult{Blocked: c.Clock().Now() - start}, fmt.Errorf("%w: all producers of %q failed", buffer.ErrPeerFailed, c.Name())
		}
		c.WaitConsumer()
	}
}

// advanceLocked moves a consumer's guarantee to ts and lets the collector
// reclaim whatever died. Capacity waiters are woken by freeLocked, one
// per reclaimed slot; nothing else needs waking on an advance.
func (c *Channel) advanceLocked(cs *buffer.Consumer, ts vt.Timestamp) {
	if ts <= cs.Guarantee {
		return
	}
	cs.Guarantee = ts
	c.Coll.Observe(c.Node(), cs.Conn, ts)
	c.collectLocked()
}

// collectLocked asks the collector for dead timestamps and frees them.
// The guarantee vector and the dead list live in per-channel scratch
// buffers, so the sweep is allocation-free in steady state.
func (c *Channel) collectLocked() {
	if c.live.Empty() {
		return
	}
	c.scratchG = c.scratchG[:0]
	for _, cs := range c.Consumers {
		c.scratchG = append(c.scratchG, cs.Guarantee)
	}
	c.scratchDead = c.Coll.Dead(c.Node(), c.live, c.scratchG, c.scratchDead[:0])
	for _, ts := range c.scratchDead {
		c.freeLocked(ts)
	}
}

// tombstone is the shared sentinel retained in the items map for freed
// timestamps. Liveness decisions always consult the live set first, so
// the sentinel's fields are never read as data — retaining one shared
// instance (instead of the freed item itself) lets freeLocked hand the
// real item back to the pool.
var tombstone = &Item{}

// freeLocked reclaims one item, wakes one capacity waiter for the freed
// slot, and recycles the item through the configured pool.
func (c *Channel) freeLocked(ts vt.Timestamp) {
	it, ok := c.items[ts]
	if !ok || !c.live.Contains(ts) {
		return
	}
	c.live.Remove(ts)
	c.AccountFreeLocked(it)
	// Retain a tombstone so GetAt(ts) can distinguish ErrGone from "not
	// yet produced"; the freed item itself goes back to the pool.
	c.items[ts] = tombstone
	c.RecycleLocked(it)
}

// Close marks the channel closed, frees every remaining live item, and
// wakes all blocked operations. Live items no consumer had seen yet are
// counted as explicitly shed — a closed channel discards them, and the
// conservation ledger must say so rather than letting them vanish.
func (c *Channel) Close() {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	if !c.MarkClosedLocked() {
		return
	}
	// An item was delivered iff some consumer advanced past it; anything
	// newer than every consumer's head is discarded undelivered.
	maxSeen := vt.None
	for _, cs := range c.Consumers {
		if cs.LastSeen > maxSeen {
			maxSeen = cs.LastSeen
		}
	}
	// Collect the live timestamps first: freeLocked mutates the set.
	c.scratchDead = c.scratchDead[:0]
	var shed int64
	c.live.Ascend(func(ts vt.Timestamp) bool {
		c.scratchDead = append(c.scratchDead, ts)
		if ts > maxSeen {
			shed++
		}
		return true
	})
	c.AccountShedLocked(shed)
	for _, ts := range c.scratchDead {
		c.freeLocked(ts)
	}
	for conn := range c.Consumers {
		c.Coll.Forget(c.Node(), conn)
	}
	c.BroadcastLocked()
}

// Drained reports that the channel is sealed and every attached consumer
// has seen its newest live item: nothing fresh remains to flush. Window
// trails may keep delivered items live, so "sealed and empty" would be
// too strict; "sealed with no consumers but live items" is not drained —
// those items can only be shed.
func (c *Channel) Drained() bool {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	if !c.SealedLocked() {
		return false
	}
	if c.live.Empty() {
		return true
	}
	if len(c.Consumers) == 0 {
		return false
	}
	newest := c.live.Max()
	for _, cs := range c.Consumers {
		if cs.LastSeen < newest {
			return false
		}
	}
	return true
}

// Drain discards items still live after Close, reporting each to OnFree
// and counting it as shed, and returns how many it discarded. Close
// already frees every live item, so Drain on a closed channel normally
// reports 0; it exists for interface parity with FIFO backends, which
// retain items at close for consumers to drain.
func (c *Channel) Drain() int {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	c.scratchDead = c.scratchDead[:0]
	c.live.Ascend(func(ts vt.Timestamp) bool {
		c.scratchDead = append(c.scratchDead, ts)
		return true
	})
	c.AccountShedLocked(int64(len(c.scratchDead)))
	for _, ts := range c.scratchDead {
		c.freeLocked(ts)
	}
	return len(c.scratchDead)
}

// WouldBeDead reports whether an item put at ts right now would be
// immediately unreachable: every attached consumer's guarantee has
// already moved past it. It backs the dead-timestamp computation
// elimination of §3.2 — a producer about to do work for ts can skip it.
// (The paper reports this technique had "limited success" because
// upstream threads run ahead of consumer guarantees; the ABL4 ablation
// reproduces that finding.)
func (c *Channel) WouldBeDead(ts vt.Timestamp) bool {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	if c.ClosedLocked() {
		return true
	}
	if len(c.Consumers) == 0 {
		// No consumers left: dead only when they *failed* (production
		// for a dead audience is wasted); before any consumer attaches,
		// items are presumed reachable.
		return c.ConsumersExhaustedLocked()
	}
	for _, cs := range c.Consumers {
		if cs.Guarantee < ts {
			return false
		}
	}
	return true
}

// Guarantee returns a consumer connection's current guarantee, or vt.None
// if the connection is unknown.
func (c *Channel) Guarantee(conn graph.ConnID) vt.Timestamp {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	if cs, ok := c.Consumers[conn]; ok {
		return cs.Guarantee
	}
	return vt.None
}
