// Package channel implements the Stampede channel abstraction: a
// system-wide named container of timestamped items supporting non-FIFO,
// out-of-order access (§1 of the paper). Channels buffer the production
// differential between pipeline stages; consumers typically request the
// *latest* item, skipping over stale data — the behaviour that creates the
// wasted items ARU exists to prevent.
//
// Each consumer of a channel holds a private connection with a
// monotonically advancing consumption guarantee: after consuming the item
// at timestamp T it will never request an item at or before T again. The
// guarantees feed the garbage collector (package gc), which reclaims items
// no consumer can name anymore.
package channel

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/gc"
	"repro/internal/graph"
	"repro/internal/trace"
	"repro/internal/vt"
)

// Errors returned by channel operations.
var (
	// ErrClosed reports an operation on a closed channel.
	ErrClosed = errors.New("channel: closed")
	// ErrDuplicate reports a put of a timestamp already present.
	ErrDuplicate = errors.New("channel: duplicate timestamp")
	// ErrPassed reports a get of a timestamp the connection's guarantee
	// has already moved past.
	ErrPassed = errors.New("channel: timestamp already passed")
	// ErrGone reports a get of an item the collector freed.
	ErrGone = errors.New("channel: item was garbage collected")
	// ErrNotAttached reports use of a connection id that was never
	// attached.
	ErrNotAttached = errors.New("channel: connection not attached")
)

// Item is one timestamped data element stored in a channel.
type Item struct {
	// TS is the item's virtual timestamp.
	TS vt.Timestamp
	// Payload is the application data.
	Payload any
	// Size is the logical size in bytes used for footprint and transfer
	// accounting (the paper's item sizes: a digitizer frame is 738 kB).
	Size int64
	// ID is the trace identity of this item instance.
	ID trace.ItemID

	freed    bool
	consumed bool
}

// consumerState tracks one attached consumer connection.
type consumerState struct {
	conn graph.ConnID
	// guarantee is the timestamp bound the consumer will never request
	// at or below again; the collector relies on it.
	guarantee vt.Timestamp
	// lastSeen is the newest timestamp delivered as a window head.
	lastSeen vt.Timestamp
	// window is the sliding-window width: how many trailing items
	// (including the head) the consumer may still re-read. 1 is the
	// ordinary get-latest consumer.
	window vt.Timestamp
}

// Config configures a channel.
type Config struct {
	// Name is the channel's system-wide unique name.
	Name string
	// Node is the channel's task-graph identity.
	Node graph.NodeID
	// Clock supplies event times for frees.
	Clock clock.Clock
	// Collector reclaims dead items; nil means gc.NewNone().
	Collector gc.Collector
	// OnFree, if non-nil, observes every reclaimed item (the runtime
	// records EvFree trace events here).
	OnFree func(it *Item, at time.Duration)
	// Capacity bounds the number of live items; Put blocks while full.
	// Zero means unbounded (the Stampede default; the tracker relies on
	// it, which is exactly how the memory footprint balloons without
	// ARU).
	Capacity int
}

// Channel is a timestamped buffer. All methods are safe for concurrent
// use.
//
// Blocking is split across two condition variables so wakeups are
// targeted: consumers waiting for fresh data park on notEmpty (signaled
// by puts and close), producers waiting for capacity park on notFull
// (signaled by frees and close). Before the split a single condvar was
// broadcast on every put and every guarantee advance, thundering-herding
// every waiter on every operation.
type Channel struct {
	cfg  Config
	coll gc.Collector

	mu        sync.Mutex
	notEmpty  *sync.Cond // consumers: a fresh item arrived (or closed)
	notFull   *sync.Cond // producers: capacity freed (or closed)
	consWait  int        // consumers currently parked on notEmpty
	items     map[vt.Timestamp]*Item
	live      *vt.Set
	consumers map[graph.ConnID]*consumerState
	producers map[graph.ConnID]bool
	maxPut    vt.Timestamp
	closed    bool
	puts      int64
	frees     int64
	liveBytes int64

	// scratchG and scratchDead are per-channel scratch buffers reused by
	// every collection sweep (guarantee vector and dead-timestamp list),
	// keeping the per-advance GC hop allocation-free. Both are only
	// touched under mu.
	scratchG    []vt.Timestamp
	scratchDead []vt.Timestamp
}

// New creates a channel.
func New(cfg Config) *Channel {
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	coll := cfg.Collector
	if coll == nil {
		coll = gc.NewNone()
	}
	c := &Channel{
		cfg:       cfg,
		coll:      coll,
		items:     make(map[vt.Timestamp]*Item),
		live:      vt.NewSet(),
		consumers: make(map[graph.ConnID]*consumerState),
		producers: make(map[graph.ConnID]bool),
		maxPut:    vt.None,
	}
	c.notEmpty = sync.NewCond(&c.mu)
	c.notFull = sync.NewCond(&c.mu)
	return c
}

// wait parks the caller on the given condition variable, telling a
// discrete-event clock (if one is in use) that the goroutine is blocked
// so virtual time may advance.
func (c *Channel) wait(cond *sync.Cond) {
	if b, ok := c.cfg.Clock.(clock.Blocker); ok {
		b.BlockEnter()
		cond.Wait()
		b.BlockExit()
		return
	}
	cond.Wait()
}

// waitConsumer parks a consumer on notEmpty, maintaining the waiter
// count that lets puts choose Signal over Broadcast.
func (c *Channel) waitConsumer() {
	c.consWait++
	c.wait(c.notEmpty)
	c.consWait--
}

// wakeConsumersLocked wakes consumers after a put. The single parked
// consumer — by far the common case — is woken with Signal; only when
// several consumers (with heterogeneous wait predicates: GetLatest
// versus Get-at-ts) are parked does it fall back to Broadcast.
func (c *Channel) wakeConsumersLocked() {
	switch {
	case c.consWait == 0:
	case c.consWait == 1:
		c.notEmpty.Signal()
	default:
		c.notEmpty.Broadcast()
	}
}

// Name returns the channel's name.
func (c *Channel) Name() string { return c.cfg.Name }

// Node returns the channel's task-graph id.
func (c *Channel) Node() graph.NodeID { return c.cfg.Node }

// AttachConsumer registers an input connection for a consumer thread. It
// must happen before the consumer's first get; attaching after items were
// already collected is fine — the new consumer simply starts at the
// present.
func (c *Channel) AttachConsumer(conn graph.ConnID) {
	c.AttachConsumerWindow(conn, 1)
}

// AttachConsumerWindow registers a consumer that analyzes a sliding
// window of width n ≥ 1 (the paper's gesture-recognition motif: "a
// sliding window over a video stream"). After consuming the item at
// timestamp T the consumer may still re-read items in (T-n, T], so its
// collection guarantee trails the head by n-1 timestamps. n < 1 panics.
func (c *Channel) AttachConsumerWindow(conn graph.ConnID, n int) {
	if n < 1 {
		panic(fmt.Sprintf("channel: window width %d < 1 on %q", n, c.cfg.Name))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.consumers[conn]; !dup {
		c.consumers[conn] = &consumerState{
			conn: conn, guarantee: vt.None, lastSeen: vt.None, window: vt.Timestamp(n),
		}
	}
}

// DetachConsumer removes a consumer connection. Its guarantee becomes
// Infinity for collection purposes: it will never request anything again.
func (c *Channel) DetachConsumer(conn graph.ConnID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.consumers[conn]; !ok {
		return
	}
	delete(c.consumers, conn)
	c.coll.Forget(c.cfg.Node, conn)
	// Any frees below wake capacity waiters via freeLocked; parked
	// consumers are unaffected by a detach.
	c.collectLocked()
}

// AttachProducer registers an output connection for a producer thread.
func (c *Channel) AttachProducer(conn graph.ConnID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.producers[conn] = true
}

// Put inserts an item. It blocks while a bounded channel is full and
// returns ErrClosed/ErrDuplicate on those conditions. The returned
// duration is the time spent blocked on capacity.
func (c *Channel) Put(conn graph.ConnID, it *Item) (time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.producers[conn] {
		return 0, fmt.Errorf("%w: producer %d on %q", ErrNotAttached, conn, c.cfg.Name)
	}
	var blocked time.Duration
	if c.cfg.Capacity > 0 {
		start := c.cfg.Clock.Now()
		for !c.closed && c.live.Len() >= c.cfg.Capacity {
			c.wait(c.notFull)
		}
		blocked = c.cfg.Clock.Now() - start
	}
	if c.closed {
		return blocked, ErrClosed
	}
	if _, dup := c.items[it.TS]; dup {
		return blocked, fmt.Errorf("%w: %v on %q", ErrDuplicate, it.TS, c.cfg.Name)
	}
	c.items[it.TS] = it
	c.live.Add(it.TS)
	c.liveBytes += it.Size
	c.puts++
	if it.TS > c.maxPut {
		c.maxPut = it.TS
	}
	// A put may itself complete a collection condition (e.g. the global
	// virtual time advanced elsewhere), so sweep opportunistically; any
	// frees wake capacity waiters inside freeLocked.
	c.collectLocked()
	c.wakeConsumersLocked()
	return blocked, nil
}

// GetResult is the outcome of a successful get. Item and Skipped are
// snapshots taken under the channel lock: the garbage collector may
// reclaim the stored items at any moment after the call returns, so
// callers never share memory with the channel.
type GetResult struct {
	// Item is the consumed item (snapshot).
	Item Item
	// Skipped lists the live items the connection passed over to reach
	// Item (stale data dropped by get-latest semantics), oldest first.
	Skipped []Item
	// Window lists the retained trailing items preceding Item (oldest
	// first) for sliding-window consumers; empty for window width 1.
	Window []Item
	// Blocked is the time spent waiting for a fresh item.
	Blocked time.Duration
}

// snapshot copies the externally visible fields of an item.
func snapshot(it *Item) Item {
	return Item{TS: it.TS, Payload: it.Payload, Size: it.Size, ID: it.ID}
}

// GetLatest blocks until an item newer than the connection's guarantee is
// available and consumes the newest such item, advancing the guarantee and
// recording everything in between as skipped. This is the "threads always
// request the latest item" discipline the ARU algorithm is predicated on
// (§3.3.3).
func (c *Channel) GetLatest(conn graph.ConnID) (GetResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.consumers[conn]
	if !ok {
		return GetResult{}, fmt.Errorf("%w: consumer %d on %q", ErrNotAttached, conn, c.cfg.Name)
	}
	start := c.cfg.Clock.Now()
	for {
		if newest := c.live.Max(); newest > cs.lastSeen {
			res := c.deliverLocked(cs, newest)
			res.Blocked = c.cfg.Clock.Now() - start
			return res, nil
		}
		if c.closed {
			return GetResult{Blocked: c.cfg.Clock.Now() - start}, ErrClosed
		}
		c.waitConsumer()
	}
}

// deliverLocked hands the item at newest to the consumer as a window
// head: trailing live items within the window are re-delivered, older
// unseen items are marked skipped, and the consumer's guarantee advances
// to newest-(window-1). Both passes walk the sorted live set in place
// (vt.Set.AscendRange): the skip-free, window-1 fast path touches no
// intermediate storage at all.
func (c *Channel) deliverLocked(cs *consumerState, newest vt.Timestamp) GetResult {
	var res GetResult
	windowStart := newest - cs.window + 1
	// Skipped: unseen live items older than the window, i.e.
	// (lastSeen, windowStart) — windowStart ≤ newest always holds.
	c.live.AscendRange(cs.lastSeen+1, windowStart, func(ts vt.Timestamp) bool {
		res.Skipped = append(res.Skipped, snapshot(c.items[ts]))
		return true
	})
	// Window members: [windowStart, newest), including previously seen
	// items the window may re-read.
	c.live.AscendRange(windowStart, newest, func(ts vt.Timestamp) bool {
		it := c.items[ts]
		it.consumed = true
		res.Window = append(res.Window, snapshot(it))
		return true
	})
	it := c.items[newest]
	it.consumed = true
	res.Item = snapshot(it)
	cs.lastSeen = newest
	// The consumer will never request ≤ windowStart again: the next
	// head is at least newest+1, so the next window starts at least at
	// windowStart+1.
	c.advanceLocked(cs, windowStart)
	return res
}

// TryGetLatest is the non-blocking variant of GetLatest: if an item newer
// than the connection's guarantee is available it is consumed exactly as
// GetLatest would, otherwise ok is false and nothing changes. Stages that
// reuse their previous input when no fresh one exists (the tracker's
// detectors reusing the current histogram model) are built on it.
func (c *Channel) TryGetLatest(conn graph.ConnID) (res GetResult, ok bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, present := c.consumers[conn]
	if !present {
		return GetResult{}, false, fmt.Errorf("%w: consumer %d on %q", ErrNotAttached, conn, c.cfg.Name)
	}
	if c.closed {
		return GetResult{}, false, ErrClosed
	}
	newest := c.live.Max()
	if newest <= cs.lastSeen {
		return GetResult{}, false, nil
	}
	return c.deliverLocked(cs, newest), true, nil
}

// Get blocks until the item at exactly ts is available and consumes it.
// It fails with ErrPassed if the connection's guarantee has moved past ts,
// and with ErrGone if the item existed but was collected (possible when
// another consumer's skip pattern let the collector reclaim it first).
// Unlike GetLatest, Get does not mark intermediate items skipped; it is
// the primitive for stages that need corresponding timestamps rather than
// freshest data.
func (c *Channel) Get(conn graph.ConnID, ts vt.Timestamp) (GetResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.consumers[conn]
	if !ok {
		return GetResult{}, fmt.Errorf("%w: consumer %d on %q", ErrNotAttached, conn, c.cfg.Name)
	}
	start := c.cfg.Clock.Now()
	for {
		if ts <= cs.guarantee {
			return GetResult{Blocked: c.cfg.Clock.Now() - start}, fmt.Errorf("%w: %v ≤ guarantee on %q", ErrPassed, ts, c.cfg.Name)
		}
		if it, present := c.items[ts]; present {
			if it.freed {
				return GetResult{Blocked: c.cfg.Clock.Now() - start}, fmt.Errorf("%w: %v on %q", ErrGone, ts, c.cfg.Name)
			}
			it.consumed = true
			res := GetResult{Item: snapshot(it), Blocked: c.cfg.Clock.Now() - start}
			if ts > cs.lastSeen {
				cs.lastSeen = ts
			}
			c.advanceLocked(cs, ts-cs.window+1)
			return res, nil
		}
		// The item may never have existed but already be unreachable: a
		// producer has moved past it.
		if c.maxPut > ts {
			return GetResult{Blocked: c.cfg.Clock.Now() - start}, fmt.Errorf("%w: %v on %q", ErrGone, ts, c.cfg.Name)
		}
		if c.closed {
			return GetResult{Blocked: c.cfg.Clock.Now() - start}, ErrClosed
		}
		c.waitConsumer()
	}
}

// advanceLocked moves a consumer's guarantee to ts and lets the collector
// reclaim whatever died. Capacity waiters are woken by freeLocked, one
// per reclaimed slot; nothing else needs waking on an advance.
func (c *Channel) advanceLocked(cs *consumerState, ts vt.Timestamp) {
	if ts <= cs.guarantee {
		return
	}
	cs.guarantee = ts
	c.coll.Observe(c.cfg.Node, cs.conn, ts)
	c.collectLocked()
}

// collectLocked asks the collector for dead timestamps and frees them.
// The guarantee vector and the dead list live in per-channel scratch
// buffers, so the sweep is allocation-free in steady state.
func (c *Channel) collectLocked() {
	if c.live.Empty() {
		return
	}
	c.scratchG = c.scratchG[:0]
	for _, cs := range c.consumers {
		c.scratchG = append(c.scratchG, cs.guarantee)
	}
	c.scratchDead = c.coll.Dead(c.cfg.Node, c.live, c.scratchG, c.scratchDead[:0])
	for _, ts := range c.scratchDead {
		c.freeLocked(ts)
	}
}

// freeLocked reclaims one item and wakes one capacity waiter for the
// freed slot.
func (c *Channel) freeLocked(ts vt.Timestamp) {
	it, ok := c.items[ts]
	if !ok || it.freed {
		return
	}
	it.freed = true
	c.live.Remove(ts)
	c.liveBytes -= it.Size
	c.frees++
	if c.cfg.OnFree != nil {
		c.cfg.OnFree(it, c.cfg.Clock.Now())
	}
	// Retain a tombstone so Get(ts) can distinguish ErrGone from "not
	// yet produced"; drop the payload to release real memory.
	it.Payload = nil
	if c.cfg.Capacity > 0 {
		c.notFull.Signal()
	}
}

// Close marks the channel closed, frees every remaining live item, and
// wakes all blocked operations.
func (c *Channel) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	// Collect the live timestamps first: freeLocked mutates the set.
	c.scratchDead = c.scratchDead[:0]
	c.live.Ascend(func(ts vt.Timestamp) bool {
		c.scratchDead = append(c.scratchDead, ts)
		return true
	})
	for _, ts := range c.scratchDead {
		c.freeLocked(ts)
	}
	for conn := range c.consumers {
		c.coll.Forget(c.cfg.Node, conn)
	}
	c.notEmpty.Broadcast()
	c.notFull.Broadcast()
}

// Closed reports whether Close has been called.
func (c *Channel) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Occupancy returns the current number of live items and their total
// bytes.
func (c *Channel) Occupancy() (items int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live.Len(), c.liveBytes
}

// Stats returns cumulative puts and frees.
func (c *Channel) Stats() (puts, frees int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.puts, c.frees
}

// WouldBeDead reports whether an item put at ts right now would be
// immediately unreachable: every attached consumer's guarantee has
// already moved past it. It backs the dead-timestamp computation
// elimination of §3.2 — a producer about to do work for ts can skip it.
// (The paper reports this technique had "limited success" because
// upstream threads run ahead of consumer guarantees; the ABL4 ablation
// reproduces that finding.)
func (c *Channel) WouldBeDead(ts vt.Timestamp) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return true
	}
	if len(c.consumers) == 0 {
		return false
	}
	for _, cs := range c.consumers {
		if cs.guarantee < ts {
			return false
		}
	}
	return true
}

// Guarantee returns a consumer connection's current guarantee, or vt.None
// if the connection is unknown.
func (c *Channel) Guarantee(conn graph.ConnID) vt.Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cs, ok := c.consumers[conn]; ok {
		return cs.guarantee
	}
	return vt.None
}
