package channel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/clock"
	"repro/internal/gc"
	"repro/internal/graph"
	"repro/internal/vt"
)

// TestChannelConcurrentWindowConsumersProperty is the -race workout for
// the split-condvar channel: N producers feed one bounded channel while
// M sliding-window consumers (plus one plain get-latest consumer) drain
// it with the dead-timestamp collector running on every operation.
//
// It asserts, per consumer connection:
//   - delivered heads are strictly increasing (get-latest never goes
//     backwards, so the guarantee is monotone);
//   - every snapshot handed out — head, window member, or skipped item —
//     carries the payload written at put time. freeLocked nils the
//     payload before reuse, so a delivered-after-free item would fail
//     the payload check;
//   - window members precede the head in ascending timestamp order.
func TestChannelConcurrentWindowConsumersProperty(t *testing.T) {
	const (
		producers = 3
		consumers = 3
		perProd   = 400
		capacity  = 8
		width     = 3
	)
	c := New(Config{
		Name:      "stress",
		Clock:     clock.NewReal(),
		Collector: gc.NewDeadTimestamp(),
		Capacity:  capacity,
	})
	prodConns := make([]graph.ConnID, producers)
	for i := range prodConns {
		prodConns[i] = graph.ConnID(100 + i)
		c.AttachProducer(prodConns[i])
	}
	consConns := make([]graph.ConnID, consumers+1)
	for i := 0; i < consumers; i++ {
		consConns[i] = graph.ConnID(200 + i)
		c.AttachConsumerWindow(consConns[i], width)
	}
	consConns[consumers] = graph.ConnID(299) // plain width-1 consumer
	c.AttachConsumer(consConns[consumers], 1)

	checkSnapshot := func(it Item) error {
		if it.Payload != int(it.TS) {
			return errorfSnapshot(it)
		}
		return nil
	}

	var next atomic.Int64 // globally increasing timestamps
	var wg sync.WaitGroup
	errs := make(chan error, producers+consumers+1)

	for _, pc := range prodConns {
		wg.Add(1)
		go func(pc graph.ConnID) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				ts := vt.Timestamp(next.Add(1))
				it := &Item{TS: ts, Size: 16, Payload: int(ts)}
				if _, err := c.Put(pc, it); err != nil {
					errs <- err
					return
				}
			}
		}(pc)
	}

	var cwg sync.WaitGroup
	for _, cc := range consConns {
		cwg.Add(1)
		go func(cc graph.ConnID) {
			defer cwg.Done()
			lastHead := vt.None
			lastGuarantee := vt.None
			for {
				res, err := c.GetLatest(cc)
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					errs <- err
					return
				}
				if res.Item.TS <= lastHead {
					errs <- errorfOrder("head", res.Item.TS, lastHead)
					return
				}
				lastHead = res.Item.TS
				if g := c.Guarantee(cc); g < lastGuarantee {
					errs <- errorfOrder("guarantee", g, lastGuarantee)
					return
				} else {
					lastGuarantee = g
				}
				if err := checkSnapshot(res.Item); err != nil {
					errs <- err
					return
				}
				prev := vt.None
				for _, w := range res.Window {
					if w.TS <= prev || w.TS >= res.Item.TS {
						errs <- errorfOrder("window", w.TS, prev)
						return
					}
					prev = w.TS
					if err := checkSnapshot(w); err != nil {
						errs <- err
						return
					}
				}
				for _, sk := range res.Skipped {
					if err := checkSnapshot(sk); err != nil {
						errs <- err
						return
					}
				}
			}
		}(cc)
	}

	wg.Wait() // all producers done
	c.Close() // unblocks consumers
	cwg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if puts, frees := c.Stats(); puts != producers*perProd || frees != puts {
		t.Errorf("puts=%d frees=%d, want %d puts all freed on close",
			puts, frees, producers*perProd)
	}
}

func errorfSnapshot(it Item) error {
	return &snapshotErr{it}
}

type snapshotErr struct{ it Item }

func (e *snapshotErr) Error() string {
	return "snapshot of item at ts " + e.it.TS.String() + " lost its payload (delivered after free?)"
}

func errorfOrder(what string, got, prev vt.Timestamp) error {
	return &orderErr{what, got, prev}
}

type orderErr struct {
	what      string
	got, prev vt.Timestamp
}

func (e *orderErr) Error() string {
	return e.what + " not monotone: " + e.got.String() + " after " + e.prev.String()
}
