package channel

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/gc"
	"repro/internal/vt"
)

// BenchmarkPutGetLatest measures one put + one consume on a DGC channel —
// the runtime's hot path. The paper argues ARU's overhead is "minuscule";
// this quantifies the whole buffer operation it piggybacks on.
func BenchmarkPutGetLatest(b *testing.B) {
	c := New(Config{Name: "b", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp()})
	c.AttachProducer(prodConn)
	c.AttachConsumer(consConn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Put(prodConn, &Item{TS: vt.Timestamp(i + 1), Size: 1024}); err != nil {
			b.Fatal(err)
		}
		if _, err := c.GetLatest(consConn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutSkip10 measures the skip-heavy pattern: ten puts per
// consume, nine items skipped and collected.
func BenchmarkPutSkip10(b *testing.B) {
	c := New(Config{Name: "b", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp()})
	c.AttachProducer(prodConn)
	c.AttachConsumer(consConn)
	ts := vt.Timestamp(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 10; j++ {
			ts++
			if _, err := c.Put(prodConn, &Item{TS: ts, Size: 1024}); err != nil {
				b.Fatal(err)
			}
		}
		res, err := c.GetLatest(consConn)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Skipped) != 9 {
			b.Fatalf("skipped %d", len(res.Skipped))
		}
	}
}

// BenchmarkWindowGet measures sliding-window delivery (width 8).
func BenchmarkWindowGet(b *testing.B) {
	c := New(Config{Name: "b", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp()})
	c.AttachProducer(prodConn)
	c.AttachConsumerWindow(consConn, 8)
	ts := vt.Timestamp(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts++
		if _, err := c.Put(prodConn, &Item{TS: ts, Size: 1024}); err != nil {
			b.Fatal(err)
		}
		if _, err := c.GetLatest(consConn); err != nil {
			b.Fatal(err)
		}
	}
}
