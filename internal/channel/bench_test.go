package channel

import (
	"sync"
	"testing"

	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/gc"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/vt"
)

// BenchmarkGetLatestNoSkip isolates the consume side of the hot path: the
// timer (and the allocation counter) only runs around GetLatest, with the
// matching Put excluded via StopTimer. Run with a fixed -benchtime=N x
// (StopTimer/StartTimer are expensive). This is the path the tentpole
// drives to 0 allocs/op.
func BenchmarkGetLatestNoSkip(b *testing.B) {
	c := New(Config{Name: "b", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp()})
	c.AttachProducer(prodConn)
	c.AttachConsumer(consConn, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := c.Put(prodConn, &Item{TS: vt.Timestamp(i + 1), Size: 1024}); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := c.GetLatest(consConn); err != nil {
			b.Fatal(err)
		}
	}
}

// benchContended drives one producer (the benchmark loop) against m
// consumer goroutines hammering GetLatest on the same channel — the
// multi-consumer fan-out every Stampede channel serves. ns/op is the
// producer-observed put cost under contention, which includes the wakeup
// protocol (Broadcast before the tentpole, targeted signaling after).
func benchContended(b *testing.B, m int) {
	c := New(Config{Name: "b", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp()})
	c.AttachProducer(prodConn)
	conns := make([]graph.ConnID, m)
	for i := range conns {
		conns[i] = graph.ConnID(100 + i)
		c.AttachConsumer(conns[i], 1)
	}
	var wg sync.WaitGroup
	for _, conn := range conns {
		wg.Add(1)
		go func(conn graph.ConnID) {
			defer wg.Done()
			for {
				if _, err := c.GetLatest(conn); err != nil {
					return
				}
			}
		}(conn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Put(prodConn, &Item{TS: vt.Timestamp(i + 1), Size: 1024}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	c.Close()
	wg.Wait()
}

// BenchmarkContendedFanout4 is the contended multi-consumer benchmark
// (4 GetLatest consumers).
func BenchmarkContendedFanout4(b *testing.B) { benchContended(b, 4) }

// BenchmarkContendedFanout16 stresses the wakeup protocol harder.
func BenchmarkContendedFanout16(b *testing.B) { benchContended(b, 16) }

// BenchmarkPutGetLatest measures one put + one consume on a DGC channel —
// the runtime's hot path. The paper argues ARU's overhead is "minuscule";
// this quantifies the whole buffer operation it piggybacks on.
func BenchmarkPutGetLatest(b *testing.B) {
	c := New(Config{Name: "b", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp()})
	c.AttachProducer(prodConn)
	c.AttachConsumer(consConn, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Put(prodConn, &Item{TS: vt.Timestamp(i + 1), Size: 1024}); err != nil {
			b.Fatal(err)
		}
		if _, err := c.GetLatest(consConn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutSkip10 measures the skip-heavy pattern: ten puts per
// consume, nine items skipped and collected.
func BenchmarkPutSkip10(b *testing.B) {
	c := New(Config{Name: "b", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp()})
	c.AttachProducer(prodConn)
	c.AttachConsumer(consConn, 1)
	ts := vt.Timestamp(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 10; j++ {
			ts++
			if _, err := c.Put(prodConn, &Item{TS: ts, Size: 1024}); err != nil {
				b.Fatal(err)
			}
		}
		res, err := c.GetLatest(consConn)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Skipped) != 9 {
			b.Fatalf("skipped %d", len(res.Skipped))
		}
	}
}

// BenchmarkWindowGet measures sliding-window delivery (width 8).
func BenchmarkWindowGet(b *testing.B) {
	c := New(Config{Name: "b", Clock: clock.NewReal(), Collector: gc.NewDeadTimestamp()})
	c.AttachProducer(prodConn)
	c.AttachConsumerWindow(consConn, 8)
	ts := vt.Timestamp(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts++
		if _, err := c.Put(prodConn, &Item{TS: ts, Size: 1024}); err != nil {
			b.Fatal(err)
		}
		if _, err := c.GetLatest(consConn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPutGetLatestMetricsOn is BenchmarkPutGetLatest with a live
// metrics registry attached: the delta between the two is the entire
// per-operation cost of the instrumentation (a handful of atomic adds;
// still 1 alloc/op — the Item). EXPERIMENTS.md tracks the pair.
func BenchmarkPutGetLatestMetricsOn(b *testing.B) {
	c := New(Config{
		Name:      "b",
		Clock:     clock.NewReal(),
		Collector: gc.NewDeadTimestamp(),
		Metrics:   metrics.NewRegistry(),
	})
	c.AttachProducer(prodConn)
	c.AttachConsumer(consConn, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Put(prodConn, &Item{TS: vt.Timestamp(i + 1), Size: 1024}); err != nil {
			b.Fatal(err)
		}
		if _, err := c.GetLatest(consConn); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPutGetBatch measures the pooled batch path: 16 items per
// PutBatch/GetBatch round, so ns/op is the amortized per-item cost. The
// pool keeps the steady state at 0 allocs/op; with metrics attached the
// instrumentation is charged once per batch, not once per item, which is
// what reclaims the PR 5 metrics-on regression for high-rate producers.
func benchPutGetBatch(b *testing.B, reg *metrics.Registry) {
	pool := buffer.NewItemPool()
	c := New(Config{
		Name:      "b",
		Clock:     clock.NewReal(),
		Collector: gc.NewDeadTimestamp(),
		Metrics:   reg,
		Pool:      pool,
	})
	c.AttachProducer(prodConn)
	c.AttachConsumer(consConn, 1)
	const batch = 16
	items := make([]*Item, batch)
	dst := make([]GetResult, batch)
	ts := vt.Timestamp(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		for j := 0; j < batch; j++ {
			it := pool.Get()
			ts++
			it.TS, it.Size = ts, 1024
			items[j] = it
		}
		if applied, _, err := c.PutBatch(prodConn, items); err != nil || applied != batch {
			b.Fatalf("putbatch = (%d, %v)", applied, err)
		}
		for got := 0; got < batch; {
			n, err := c.GetBatch(consConn, dst[:batch-got])
			if err != nil {
				b.Fatal(err)
			}
			got += n
		}
	}
}

func BenchmarkPutGetBatch16(b *testing.B)          { benchPutGetBatch(b, nil) }
func BenchmarkPutGetBatch16MetricsOn(b *testing.B) { benchPutGetBatch(b, metrics.NewRegistry()) }

// BenchmarkPutGetLatestPooled is BenchmarkPutGetLatest with an ItemPool:
// the put=1 allocation (the Item) recycles through the pool, so the
// steady-state round trip is 0 allocs/op.
func BenchmarkPutGetLatestPooled(b *testing.B) {
	pool := buffer.NewItemPool()
	c := New(Config{
		Name:      "b",
		Clock:     clock.NewReal(),
		Collector: gc.NewDeadTimestamp(),
		Pool:      pool,
	})
	c.AttachProducer(prodConn)
	c.AttachConsumer(consConn, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := pool.Get()
		it.TS, it.Size = vt.Timestamp(i+1), 1024
		if _, err := c.Put(prodConn, it); err != nil {
			b.Fatal(err)
		}
		if _, err := c.GetLatest(consConn); err != nil {
			b.Fatal(err)
		}
	}
}
