// Quickstart: a three-stage pipeline (camera → filter → display) where
// the camera runs an order of magnitude faster than the display. Without
// ARU most frames are produced only to be skipped; with ARU the
// summary-STP feedback cascades back to the camera and it slows to what
// downstream can actually use.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	aru "repro"
)

func main() {
	fmt.Println("quickstart: camera(5ms) → filter(20ms) → display(60ms), 10 virtual seconds")
	fmt.Println()
	for _, policy := range []aru.Policy{aru.PolicyOff(), aru.PolicyMin()} {
		a, produced, err := run(policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s produced %4d frames, displayed %3d, wasted %5.1f%% of memory, mean footprint %6.1f kB\n",
			policy.Name(), produced, a.Outputs, a.WastedMemPct, a.All.MeanBytes/1024)
	}
	fmt.Println()
	fmt.Println("With ARU the camera throttles to the display's sustainable period,")
	fmt.Println("so frames that would be skipped are simply never produced.")
}

func run(policy aru.Policy) (*aru.Analysis, int64, error) {
	rec := aru.NewRecorder()
	rt := aru.New(aru.Options{
		Clock:    aru.NewVirtualClock(),
		ARU:      policy,
		Recorder: rec,
	})

	raw := rt.MustAddChannel("raw-frames", 0)
	filtered := rt.MustAddChannel("filtered-frames", 0)

	var produced int64
	camera := rt.MustAddThread("camera", 0, func(ctx *aru.Ctx) error {
		for ts := aru.Timestamp(1); !ctx.Stopped(); ts++ {
			ctx.Compute(5 * time.Millisecond) // capture + digitize
			if err := ctx.Put(ctx.Outs()[0], ts, nil, 64<<10); err != nil {
				return err
			}
			produced++
			ctx.Sync() // periodicity_sync(): measures STP, throttles to feedback
		}
		return nil
	})

	filter := rt.MustAddThread("filter", 0, func(ctx *aru.Ctx) error {
		for {
			msg, err := ctx.GetLatest(ctx.Ins()[0]) // freshest frame, skip stale
			if err != nil {
				return err
			}
			ctx.Compute(20 * time.Millisecond) // denoise
			if err := ctx.Put(ctx.Outs()[0], msg.TS, nil, 32<<10); err != nil {
				return err
			}
			ctx.Sync()
		}
	})

	display := rt.MustAddThread("display", 0, func(ctx *aru.Ctx) error {
		for {
			if _, err := ctx.GetLatest(ctx.Ins()[0]); err != nil {
				return err
			}
			ctx.Compute(60 * time.Millisecond) // render
			ctx.Emit()                         // one pipeline output
			ctx.Sync()
		}
	})

	camera.MustOutput(raw)
	filter.MustInput(raw)
	filter.MustOutput(filtered)
	display.MustInput(filtered)

	if err := rt.RunFor(10 * time.Second); err != nil && !errors.Is(err, aru.ErrShutdown) {
		return nil, 0, err
	}
	a, err := aru.Analyze(rec, time.Second, 10*time.Second)
	return a, produced, err
}
