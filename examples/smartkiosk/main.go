// Smartkiosk runs the paper's Figure 1 pipeline — the two-fidelity Smart
// Kiosk tracker — and demonstrates two things the Figure 5 tracker
// cannot:
//
//  1. ARU feedback crossing a *queue*: decision records must not be lost,
//     so the decision queue grows without bound when the front of the
//     pipeline outruns the expensive high-fidelity tracker. ARU carries
//     the demand signal through the queue and the whole front slows down.
//
//  2. A user-defined compression operator (§3.3.2): the Decision stage
//     forwards only ~half of what it sees, so a rate-aware operator lets
//     the front run twice as fast as plain min would allow — doubling
//     displayed results while keeping the queue bounded.
//
//     go run ./examples/smartkiosk
//
// With -crashy, it instead demonstrates the thread-supervision
// subsystem on a kiosk-shaped pipeline with a deliberately unreliable
// digitizer: every 25th frame panics the stage. The supervisor contains
// each panic, restarts the digitizer on a capped-exponential backoff
// schedule, and the degraded health is visible in Runtime.Health() and
// WriteStatus while the rest of the pipeline keeps flowing:
//
//	go run ./examples/smartkiosk -crashy
//
// With -metrics ADDR (e.g. -metrics :8080), the crashy run additionally
// serves live observability on ADDR: /metrics (Prometheus text),
// /metrics.json, /status, and /health. Scrape it mid-run to watch the
// restart and stall counters move:
//
//	go run ./examples/smartkiosk -crashy -metrics :8080 &
//	curl -s localhost:8080/metrics | grep aru_thread_restarts_total
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	aru "repro"
)

func main() {
	crashy := flag.Bool("crashy", false, "inject a periodically panicking digitizer to demo supervised restarts")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /metrics.json, /status, /health on this address during -crashy (e.g. :8080)")
	flag.Parse()
	if *crashy {
		runCrashy(*metricsAddr)
		return
	}
	fmt.Println("smart kiosk: digitizer → low-fi tracker → decision ⇒(queue)⇒ high-fi tracker → GUI")
	fmt.Println("(decision forwards ~50% of records; high-fi is the 170ms bottleneck)")
	fmt.Println()
	fmt.Printf("%-22s %10s %12s %14s %12s\n", "variant", "outputs", "mem mean", "queue depth", "latency")

	for _, v := range []struct {
		name string
		cfg  aru.KioskConfig
		dur  time.Duration
	}{
		{"no-aru", aru.KioskConfig{Seed: 42, Policy: aru.PolicyOff()}, 60 * time.Second},
		{"aru-min", aru.KioskConfig{Seed: 42, Policy: aru.PolicyMin()}, 60 * time.Second},
		{"aru-min+rate-aware", aru.KioskConfig{Seed: 42, Policy: aru.PolicyMin(), DecisionAwareCompressor: true}, 60 * time.Second},
	} {
		app, err := aru.NewKiosk(v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := app.Runtime.Start(); err != nil {
			log.Fatal(err)
		}
		// Participate in the virtual clock for the run's duration.
		type registrar interface{ Add(int) }
		if reg, ok := app.Runtime.Clock().(registrar); ok {
			reg.Add(1)
			app.Runtime.Clock().Sleep(v.dur)
			reg.Add(-1)
		}
		depth, _ := app.Runtime.Buffer(app.DecisionQueue).Occupancy()
		app.Runtime.Stop()
		if err := app.Runtime.Wait(); err != nil {
			log.Fatal(err)
		}
		a, err := aru.Analyze(app.Recorder, v.dur/10, v.dur)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10d %9.2f MB %14d %12v\n",
			v.name, a.Outputs, a.All.MeanBytes/(1<<20), depth,
			a.LatencyMean.Round(time.Millisecond))
	}

	fmt.Println()
	fmt.Println("no-aru: the decision queue grows all run long (records may not be dropped).")
	fmt.Println("aru-min: feedback crosses the queue; the digitizer slows to the high-fi rate")
	fmt.Println("         — but over-throttles, because min doesn't know decision halves the flow.")
	fmt.Println("rate-aware: a user-defined operator (§3.3.2) scales the feedback by the")
	fmt.Println("         forwarding rate: ~2x the displayed results, queue still bounded.")
}

// runCrashy hand-wires a kiosk-shaped pipeline — digitizer → tracker →
// GUI — whose digitizer panics on every 25th frame, and puts the
// thread-supervision subsystem on display:
//
//   - the panic is contained and surfaced as a typed failure instead of
//     crashing the process;
//   - WithRestartOnFailure restarts the digitizer on a capped-exponential
//     backoff schedule (budget: 8 restarts), so the pipeline keeps
//     producing frames across failures;
//   - Runtime.Health and WriteStatus show the degraded state live: restart
//     counts, last failure, and — once the budget is exhausted — the
//     ErrPeerFailed cascade that winds down the rest of the pipeline.
func runCrashy(metricsAddr string) {
	fmt.Println("smart kiosk (crashy): digitizer panics every 25th frame; supervisor restarts it")
	fmt.Println()

	// The demo normally runs on the discrete-event virtual clock (15
	// simulated seconds in a few real milliseconds). With -metrics it
	// switches to the wall clock so there is a real scrape window: curl
	// the endpoint mid-run and watch the restart counters move.
	clk := aru.NewVirtualClock()
	if metricsAddr != "" {
		clk = aru.NewRealClock()
	}
	opts := aru.Options{
		Clock: clk,
		ARU:   aru.PolicyMin(),
		// Flag any thread whose heartbeat goes quiet for >2s of runtime
		// time (none should, here — the column demos the watchdog).
		StallTTL: 2 * time.Second,
	}
	if metricsAddr != "" {
		opts = aru.WithMetricsAddr(opts, metricsAddr)
	}
	rt := aru.New(opts)

	frames := rt.MustAddChannel("frames", 0)
	tracked := rt.MustAddChannel("tracked", 0)

	// The digitizer's frame counter lives *outside* the body so it
	// survives restarts: each incarnation resumes where the previous one
	// died instead of replaying (and re-panicking on) the same frame.
	var frame aru.Timestamp
	displayed := 0

	dig := rt.MustAddThread("digitizer", 0, func(ctx *aru.Ctx) error {
		for !ctx.Stopped() {
			frame++
			ctx.Compute(10 * time.Millisecond)
			if frame%25 == 0 {
				panic(fmt.Sprintf("frame grabber wedged at frame %d", frame))
			}
			if err := ctx.Put(ctx.Outs()[0], frame, nil, 1<<20); err != nil {
				return err
			}
			ctx.Sync()
		}
		return nil
	}, aru.WithRestartOnFailure(aru.RestartPolicy{
		Backoff:     aru.Backoff{Base: 50 * time.Millisecond, Cap: 500 * time.Millisecond, Jitter: -1},
		MaxRestarts: 8,
		Seed:        42,
	}))
	dig.MustOutput(frames)

	trk := rt.MustAddThread("tracker", 0, func(ctx *aru.Ctx) error {
		for !ctx.Stopped() {
			m, err := ctx.Get(ctx.Ins()[0])
			if err != nil {
				return err
			}
			ctx.Compute(30 * time.Millisecond)
			if err := ctx.Put(ctx.Outs()[0], m.TS, nil, 64<<10); err != nil {
				return err
			}
			ctx.Sync()
		}
		return nil
	})
	trk.MustInput(frames)
	trk.MustOutput(tracked)

	gui := rt.MustAddThread("gui", 0, func(ctx *aru.Ctx) error {
		for !ctx.Stopped() {
			if _, err := ctx.Get(ctx.Ins()[0]); err != nil {
				return err
			}
			displayed++
			ctx.Sync()
		}
		return nil
	})
	gui.MustInput(tracked)

	if err := rt.Start(); err != nil {
		log.Fatal(err)
	}
	if addr := rt.MetricsAddr(); addr != "" {
		fmt.Printf("observability: curl -s http://%s/metrics | grep aru_\n\n", addr)
	}

	// Sample health mid-run, while the supervisor is actively containing
	// panics and restarting the digitizer. (The registrar dance keeps the
	// discrete-event clock advancing while this goroutine sleeps; the wall
	// clock has no registrar and needs none.)
	type registrar interface{ Add(int) }
	reg, hasReg := rt.Clock().(registrar)
	if hasReg {
		reg.Add(1)
	}
	rt.Clock().Sleep(3 * time.Second)
	fmt.Println("--- t=3s: panics contained, digitizer restarting on backoff ---")
	printHealth(rt.Health())

	// Keep running until the restart budget is exhausted: the digitizer
	// fails permanently, its death fades the STP feedback, and the
	// tracker/GUI observe ErrPeerFailed once the pipeline drains.
	rt.Clock().Sleep(12 * time.Second)
	if hasReg {
		reg.Add(-1)
	}
	rt.Stop()
	err := rt.Wait()

	fmt.Println()
	fmt.Println("--- t=15s: restart budget exhausted, pipeline wound down ---")
	printHealth(rt.Health())
	fmt.Println()
	fmt.Printf("frames displayed across all digitizer incarnations: %d\n", displayed)
	fmt.Println()
	fmt.Println("Wait() reports every permanent failure (joined):")
	fmt.Printf("  %v\n", err)
	fmt.Println()
	fmt.Println("full status (WriteStatus):")
	rt.WriteStatus(os.Stdout)
}

func printHealth(h aru.HealthSnapshot) {
	fmt.Printf("%-12s %-11s %9s %8s  %s\n", "thread", "state", "restarts", "stalled", "last failure")
	for _, th := range h.Threads {
		last := "-"
		if th.LastFailure != nil {
			last = th.LastFailure.Error()
		}
		fmt.Printf("%-12s %-11s %9d %8v  %s\n", th.Name, th.State, th.Restarts, th.Stalled, last)
	}
	fmt.Printf("healthy: %v\n", h.Healthy())
}
