// Smartkiosk runs the paper's Figure 1 pipeline — the two-fidelity Smart
// Kiosk tracker — and demonstrates two things the Figure 5 tracker
// cannot:
//
//  1. ARU feedback crossing a *queue*: decision records must not be lost,
//     so the decision queue grows without bound when the front of the
//     pipeline outruns the expensive high-fidelity tracker. ARU carries
//     the demand signal through the queue and the whole front slows down.
//
//  2. A user-defined compression operator (§3.3.2): the Decision stage
//     forwards only ~half of what it sees, so a rate-aware operator lets
//     the front run twice as fast as plain min would allow — doubling
//     displayed results while keeping the queue bounded.
//
//     go run ./examples/smartkiosk
package main

import (
	"fmt"
	"log"
	"time"

	aru "repro"
)

func main() {
	fmt.Println("smart kiosk: digitizer → low-fi tracker → decision ⇒(queue)⇒ high-fi tracker → GUI")
	fmt.Println("(decision forwards ~50% of records; high-fi is the 170ms bottleneck)")
	fmt.Println()
	fmt.Printf("%-22s %10s %12s %14s %12s\n", "variant", "outputs", "mem mean", "queue depth", "latency")

	for _, v := range []struct {
		name string
		cfg  aru.KioskConfig
		dur  time.Duration
	}{
		{"no-aru", aru.KioskConfig{Seed: 42, Policy: aru.PolicyOff()}, 60 * time.Second},
		{"aru-min", aru.KioskConfig{Seed: 42, Policy: aru.PolicyMin()}, 60 * time.Second},
		{"aru-min+rate-aware", aru.KioskConfig{Seed: 42, Policy: aru.PolicyMin(), DecisionAwareCompressor: true}, 60 * time.Second},
	} {
		app, err := aru.NewKiosk(v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := app.Runtime.Start(); err != nil {
			log.Fatal(err)
		}
		// Participate in the virtual clock for the run's duration.
		type registrar interface{ Add(int) }
		if reg, ok := app.Runtime.Clock().(registrar); ok {
			reg.Add(1)
			app.Runtime.Clock().Sleep(v.dur)
			reg.Add(-1)
		}
		depth, _ := app.Runtime.Queue(app.DecisionQueue).Occupancy()
		app.Runtime.Stop()
		if err := app.Runtime.Wait(); err != nil {
			log.Fatal(err)
		}
		a, err := aru.Analyze(app.Recorder, v.dur/10, v.dur)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10d %9.2f MB %14d %12v\n",
			v.name, a.Outputs, a.All.MeanBytes/(1<<20), depth,
			a.LatencyMean.Round(time.Millisecond))
	}

	fmt.Println()
	fmt.Println("no-aru: the decision queue grows all run long (records may not be dropped).")
	fmt.Println("aru-min: feedback crosses the queue; the digitizer slows to the high-fi rate")
	fmt.Println("         — but over-throttles, because min doesn't know decision halves the flow.")
	fmt.Println("rate-aware: a user-defined operator (§3.3.2) scales the feedback by the")
	fmt.Println("         forwarding rate: ~2x the displayed results, queue still bounded.")
}
