// Gesture demonstrates the paper's other motivating access pattern: "a
// gesture recognition module may need to analyze a sliding window over a
// video stream" (§1). The recognizer declares a width-8 window over the
// camera channel; each iteration it receives the freshest frame plus the
// retained trailing frames, and the runtime's garbage collector knows to
// keep exactly that much history alive — no more.
//
//	go run ./examples/gesture
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	aru "repro"
)

const windowWidth = 8

func main() {
	fmt.Println("gesture recognition: camera(33ms) → recognizer(120ms, sliding window of 8)")
	fmt.Println()
	for _, policy := range []aru.Policy{aru.PolicyOff(), aru.PolicyMin()} {
		if err := run(policy); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	fmt.Println("The window keeps up to 8 frames alive per ARU state; everything older")
	fmt.Println("is collected. With ARU the camera paces to the recognizer, so the")
	fmt.Println("window holds consecutive frames instead of a sparse sample.")
}

func run(policy aru.Policy) error {
	rec := aru.NewRecorder()
	rt := aru.New(aru.Options{Clock: aru.NewVirtualClock(), ARU: policy, Recorder: rec})
	frames := rt.MustAddChannel("frames", 0)

	camera := rt.MustAddThread("camera", 0, func(ctx *aru.Ctx) error {
		rng := rand.New(rand.NewSource(1))
		phase := 0.0
		for ts := aru.Timestamp(1); !ctx.Stopped(); ts++ {
			ctx.Compute(6 * time.Millisecond)
			phase += 0.25
			motion := math.Sin(phase) + rng.NormFloat64()*0.1
			if err := ctx.Put(ctx.Outs()[0], ts, motion, 300<<10); err != nil {
				return err
			}
			ctx.Idle(33*time.Millisecond - ctx.Elapsed())
			ctx.Sync()
		}
		return nil
	})

	var gestures, iterations, maxSpan int
	recognizer := rt.MustAddThread("recognizer", 0, func(ctx *aru.Ctx) error {
		in := ctx.Ins()[0]
		for {
			head, window, err := ctx.GetWindow(in)
			if err != nil {
				return err
			}
			iterations++
			if span := len(window) + 1; span > maxSpan {
				maxSpan = span
			}
			ctx.Compute(120 * time.Millisecond)
			// "Recognize" a gesture: sustained rising motion across the
			// window.
			rising := 0
			prev := math.Inf(-1)
			for _, m := range window {
				v := m.Payload.(float64)
				if v > prev {
					rising++
				}
				prev = v
			}
			if head.Payload.(float64) > prev {
				rising++
			}
			if rising >= windowWidth-2 && len(window) == windowWidth-1 {
				gestures++
			}
			ctx.Emit()
			ctx.Sync()
		}
	})

	camera.MustOutput(frames)
	recognizer.MustInputWindow(frames, windowWidth)

	if err := rt.RunFor(20 * time.Second); err != nil {
		return err
	}
	a, err := aru.Analyze(rec, 2*time.Second, 20*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("%-7s iterations %3d, window span up to %d frames, gestures %2d, mean footprint %5.2f MB, wasted %4.1f%%\n",
		policy.Name(), iterations, maxSpan, gestures, a.All.MeanBytes/(1<<20), a.WastedMemPct)
	return nil
}
