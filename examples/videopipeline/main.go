// Videopipeline runs the paper's evaluation workload — the color-based
// people tracker — under all three policies and prints the comparison the
// paper's Figures 6, 7 and 10 make: ARU slashes the memory footprint and
// wasted work while sustaining (min) or trading a little throughput for
// much lower latency (max).
//
//	go run ./examples/videopipeline
//	go run ./examples/videopipeline -hosts 5 -duration 3m
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	aru "repro"
)

func main() {
	var (
		hosts    = flag.Int("hosts", 1, "cluster hosts (1 or 5)")
		duration = flag.Duration("duration", 2*time.Minute, "virtual run length")
		seed     = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	fmt.Printf("color-based people tracker, %d host(s), %v virtual run\n\n", *hosts, *duration)
	fmt.Printf("%-8s %12s %12s %12s %10s %10s %9s\n",
		"policy", "mem mean", "wasted mem", "wasted comp", "fps", "latency", "jitter")

	for _, policy := range []aru.Policy{aru.PolicyOff(), aru.PolicyMin(), aru.PolicyMax()} {
		app, err := aru.NewTracker(aru.TrackerConfig{
			Hosts:  *hosts,
			Seed:   *seed,
			Policy: policy,
		})
		if err != nil {
			log.Fatal(err)
		}
		a, err := app.Run(*duration, *duration/10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %9.2f MB %11.1f%% %11.1f%% %7.2f/s %10v %9v\n",
			policy.Name(),
			a.All.MeanBytes/(1<<20),
			a.WastedMemPct, a.WastedCompPct,
			a.ThroughputFPS,
			a.LatencyMean.Round(time.Millisecond),
			a.Jitter.Round(time.Millisecond))
	}

	fmt.Println()
	fmt.Println("no-aru floods the pipeline with frames that downstream skips;")
	fmt.Println("aru-min sustains the fastest consumer (safe default);")
	fmt.Println("aru-max matches the slowest consumer — least waste, lowest latency,")
	fmt.Println("but over-throttling costs some throughput (paper §5.2).")
}
