// Sensorfusion demonstrates the corresponding-timestamp pattern from the
// paper's introduction: "a stereo module in an interactive vision
// application may require images with corresponding timestamps from
// multiple cameras to compute its output."
//
// Two cameras feed a fusion stage that pairs a fresh left frame with the
// right frame of the same timestamp (Get-exact, falling back to the
// freshest right frame when the exact one was already skipped away).
// Detections go into a Stampede queue — a FIFO whose items must not be
// lost — drained by an alert logger. ARU throttles both cameras to the
// fusion stage's sustainable period.
//
//	go run ./examples/sensorfusion
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	aru "repro"
)

func main() {
	fmt.Println("stereo fusion: two 30ms cameras → 100ms fusion (corresponding timestamps) → alert queue")
	fmt.Println()
	for _, policy := range []aru.Policy{aru.PolicyOff(), aru.PolicyMin()} {
		if err := run(policy); err != nil {
			log.Fatal(err)
		}
	}
}

func run(policy aru.Policy) error {
	rec := aru.NewRecorder()
	rt := aru.New(aru.Options{
		Clock:    aru.NewVirtualClock(),
		ARU:      policy,
		Recorder: rec,
	})

	left := rt.MustAddChannel("left-frames", 0)
	right := rt.MustAddChannel("right-frames", 0)
	alerts := rt.MustAddQueue("alerts", 0)

	camera := func(name string, jitterSeed int64) aru.Body {
		return func(ctx *aru.Ctx) error {
			rng := rand.New(rand.NewSource(jitterSeed))
			for ts := aru.Timestamp(1); !ctx.Stopped(); ts++ {
				// 30ms nominal period with a little jitter.
				ctx.Compute(28*time.Millisecond + time.Duration(rng.Intn(4))*time.Millisecond)
				if err := ctx.Put(ctx.Outs()[0], ts, nil, 300<<10); err != nil {
					return err
				}
				ctx.Sync()
			}
			return nil
		}
	}
	camL := rt.MustAddThread("camera-left", 0, camera("L", 1))
	camR := rt.MustAddThread("camera-right", 0, camera("R", 2))

	var paired, fallback int
	fusion := rt.MustAddThread("fusion", 0, func(ctx *aru.Ctx) error {
		rng := rand.New(rand.NewSource(3))
		ins := ctx.Ins() // [left, right]
		out := ctx.Outs()[0]
		var alertTS aru.Timestamp
		for {
			l, err := ctx.GetLatest(ins[0])
			if err != nil {
				return err
			}
			// Stereo needs the right frame with the *corresponding*
			// timestamp; when it is already gone (skipped or collected),
			// fall back to the freshest right frame.
			r, err := ctx.GetAt(ins[1], l.TS)
			switch {
			case err == nil:
				paired++
			case errors.Is(err, aru.ErrShutdown):
				return err
			default:
				if r, err = ctx.GetLatest(ins[1]); err != nil {
					return err
				}
				fallback++
			}
			_ = r
			ctx.Compute(100 * time.Millisecond) // disparity + detection
			if rng.Float64() < 0.2 {            // something detected
				alertTS++
				if err := ctx.Put(out, alertTS, fmt.Sprintf("object @ frame %d", l.TS), 256); err != nil {
					return err
				}
			}
			// Every examination is a pipeline output (negative results
			// included); alerts are the side channel for detections.
			ctx.Emit()
			ctx.Sync()
		}
	})

	var logged int
	logger := rt.MustAddThread("alert-logger", 0, func(ctx *aru.Ctx) error {
		for {
			if _, err := ctx.GetQueue(ctx.Ins()[0]); err != nil {
				return err
			}
			ctx.Compute(2 * time.Millisecond)
			logged++
			ctx.Emit()
			ctx.Sync()
		}
	})

	camL.MustOutput(left)
	camR.MustOutput(right)
	fusion.MustInput(left)
	fusion.MustInput(right)
	fusion.MustOutput(alerts)
	logger.MustInput(alerts)

	if err := rt.RunFor(20 * time.Second); err != nil {
		return err
	}
	a, err := aru.Analyze(rec, 2*time.Second, 20*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("%-7s fused %3d pairs exactly, %3d via fallback; %3d alerts logged; wasted mem %5.1f%%, footprint %7.0f kB\n",
		policy.Name(), paired, fallback, logged, a.WastedMemPct, a.All.MeanBytes/1024)
	return nil
}
