// Distributed demonstrates the runtime spanning real TCP sockets: a
// channel server hosts a "frames" channel; a producer and two consumers
// attach over the wire. Summary-STP feedback is piggybacked on the
// protocol exactly as the paper piggybacks it on put/get: the consumers'
// gets deliver their sustainable periods to the channel, and each put's
// reply carries the channel's compressed summary back — the producer
// throttles itself accordingly.
//
//	go run ./examples/distributed                 # all roles in-process
//	go run ./examples/distributed -listen :7777   # server only
//	go run ./examples/distributed -connect HOST:7777 -role producer
//	go run ./examples/distributed -connect HOST:7777 -role consumer -period 150ms
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	aru "repro"
)

func main() {
	var (
		listen  = flag.String("listen", "", "run only a channel server on this address")
		connect = flag.String("connect", "", "attach to a server at this address instead of starting one")
		role    = flag.String("role", "", "with -connect: producer or consumer")
		period  = flag.Duration("period", 120*time.Millisecond, "consumer processing period")
		frames  = flag.Int("frames", 60, "frames to produce")
	)
	flag.Parse()

	switch {
	case *listen != "":
		srv, err := aru.NewRemoteServer(aru.RemoteServerConfig{Addr: *listen}, "frames")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("channel server hosting %q on %s (ctrl-c to stop)\n", "frames", srv.Addr())
		select {}

	case *connect != "":
		switch *role {
		case "producer":
			if err := produce(*connect, *frames); err != nil {
				log.Fatal(err)
			}
		case "consumer":
			if err := consume(*connect, *period, "remote-consumer"); err != nil && !errors.Is(err, aru.ErrShutdown) {
				log.Fatal(err)
			}
		default:
			log.Fatal("with -connect, pass -role producer or -role consumer")
		}

	default:
		// Demo mode: everything in one process over localhost.
		srv, err := aru.NewRemoteServer(aru.RemoteServerConfig{Addr: "127.0.0.1:0"}, "frames")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("channel server on %s\n\n", srv.Addr())

		var wg sync.WaitGroup
		for _, c := range []struct {
			name   string
			period time.Duration
		}{
			{"fast-consumer", 60 * time.Millisecond},
			{"slow-consumer", 180 * time.Millisecond},
		} {
			wg.Add(1)
			go func(name string, p time.Duration) {
				defer wg.Done()
				if err := consume(srv.Addr(), p, name); err != nil && !errors.Is(err, aru.ErrShutdown) {
					log.Printf("%s: %v", name, err)
				}
			}(c.name, c.period)
		}

		if err := produce(srv.Addr(), *frames); err != nil {
			log.Fatal(err)
		}
		srv.Close() // releases the blocked consumers
		wg.Wait()
		fmt.Println("\nThe producer started at its natural 20ms period and converged to the")
		fmt.Println("fastest consumer's ~60ms period — ARU's min rule, over real sockets.")
	}
}

// produce pushes frames, pacing itself to the summary-STP piggybacked on
// each put's reply (the ARU feedback loop, client side).
func produce(addr string, frames int) error {
	prod, err := aru.DialRemoteProducer(addr, "frames")
	if err != nil {
		return err
	}
	defer prod.Close()

	const natural = 20 * time.Millisecond
	var reported aru.STP
	for ts := aru.Timestamp(1); ts <= aru.Timestamp(frames); ts++ {
		start := time.Now()
		summary, err := prod.Put(ts, []byte("frame-payload"), 64<<10)
		if err != nil {
			return err
		}
		if summary != reported {
			fmt.Printf("producer: channel summary-STP is now %v\n", summary)
			reported = summary
		}
		// Pace to max(natural period, downstream feedback).
		target := natural
		if summary.Known() && summary.Duration() > target {
			target = summary.Duration()
		}
		if spent := time.Since(start); spent < target {
			time.Sleep(target - spent)
		}
	}
	fmt.Printf("producer: done after %d frames\n", frames)
	return nil
}

// consume drains the freshest frames at a fixed processing period,
// reporting that period as its summary-STP with every get.
func consume(addr string, period time.Duration, name string) error {
	cons, err := aru.DialRemoteConsumer(addr, "frames")
	if err != nil {
		return err
	}
	defer cons.Close()

	got, skipped := 0, 0
	for {
		item, err := cons.GetLatest(aru.STP(period))
		if err != nil {
			fmt.Printf("%-14s consumed %3d frames, skipped %3d (server closed)\n", name, got, skipped)
			return aru.ErrShutdown
		}
		got++
		skipped += len(item.SkippedTS)
		time.Sleep(period) // processing
	}
}
