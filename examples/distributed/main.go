// Distributed demonstrates the runtime spanning real TCP sockets: a
// channel server hosts a "frames" channel; producers and consumers
// attach over the wire. Summary-STP feedback is piggybacked on the
// protocol exactly as the paper piggybacks it on put/get: the consumers'
// gets deliver their sustainable periods to the channel, and each put's
// reply carries the channel's compressed summary back — the producer
// throttles itself accordingly.
//
// Two attachment styles are shown. The raw roles (producer/consumer)
// speak the wire protocol directly. The pipeline role instead mounts
// the hosted channel into an ordinary runtime via the registered
// "remote" buffer backend (Runtime.AddRemoteChannel): its camera and
// display threads use the same Ctx.Put/Ctx.Get calls as any local
// application, and Ctx.Sync throttles the camera from summary-STPs
// that crossed the wire.
//
//	go run ./examples/distributed                 # all roles in-process
//	go run ./examples/distributed -listen :7777   # server only
//	go run ./examples/distributed -connect HOST:7777 -role producer
//	go run ./examples/distributed -connect HOST:7777 -role consumer -period 150ms
//	go run ./examples/distributed -connect HOST:7777 -role pipeline -period 90ms
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	aru "repro"
)

// tuning collects the fault-tolerance knobs every role shares: wire
// deadlines, redial backoff, the retry budget behind ErrDegraded, and
// the staleness TTL past which a silent peer's summary-STP decays back
// toward local pacing.
var tuning aru.RemoteTuning

// metricsAddr optionally serves the pipeline role's observability
// endpoint (/metrics, /metrics.json, /status, /health).
var metricsAddr string

func main() {
	var (
		listen  = flag.String("listen", "", "run only a channel server on this address")
		connect = flag.String("connect", "", "attach to a server at this address instead of starting one")
		role    = flag.String("role", "", "with -connect: producer or consumer")
		period  = flag.Duration("period", 120*time.Millisecond, "consumer processing period")
		frames  = flag.Int("frames", 60, "frames to produce")
	)
	flag.DurationVar(&tuning.CallTimeout, "call-timeout", 0, "per-call wire deadline (0: default 5s)")
	flag.DurationVar(&tuning.RetryBase, "retry-base", 0, "first redial backoff delay (0: default 50ms)")
	flag.DurationVar(&tuning.RetryCap, "retry-cap", 0, "redial backoff cap (0: default 2s)")
	flag.IntVar(&tuning.MaxRetries, "max-retries", 0, "redial/retry budget before ErrDegraded (0: default 3)")
	flag.DurationVar(&tuning.StaleTTL, "stale-ttl", 0, "remote summary-STP trust window (0: default 10s; <0: never decay)")
	flag.StringVar(&metricsAddr, "metrics", "", "pipeline role: serve /metrics, /metrics.json, /status, /health on this address (e.g. :8080)")
	flag.Parse()

	switch {
	case *listen != "":
		srv, err := aru.NewRemoteServer(aru.RemoteServerConfig{Addr: *listen}, "frames")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("channel server hosting %q on %s (ctrl-c to stop)\n", "frames", srv.Addr())
		select {}

	case *connect != "":
		switch *role {
		case "producer":
			if err := produce(*connect, *frames); err != nil {
				log.Fatal(err)
			}
		case "consumer":
			if err := consume(*connect, *period, "remote-consumer"); err != nil && !errors.Is(err, aru.ErrShutdown) {
				log.Fatal(err)
			}
		case "pipeline":
			if err := pipeline(*connect, *frames, *period); err != nil {
				log.Fatal(err)
			}
		default:
			log.Fatal("with -connect, pass -role producer, consumer, or pipeline")
		}

	default:
		// Demo mode: everything in one process over localhost.
		srv, err := aru.NewRemoteServer(aru.RemoteServerConfig{Addr: "127.0.0.1:0"}, "frames")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("channel server on %s\n\n", srv.Addr())

		var wg sync.WaitGroup
		for _, c := range []struct {
			name   string
			period time.Duration
		}{
			{"fast-consumer", 60 * time.Millisecond},
			{"slow-consumer", 180 * time.Millisecond},
		} {
			wg.Add(1)
			go func(name string, p time.Duration) {
				defer wg.Done()
				if err := consume(srv.Addr(), p, name); err != nil && !errors.Is(err, aru.ErrShutdown) {
					log.Printf("%s: %v", name, err)
				}
			}(c.name, c.period)
		}

		if err := pipeline(srv.Addr(), *frames, 60*time.Millisecond); err != nil {
			log.Fatal(err)
		}
		srv.Close() // releases the blocked consumers
		wg.Wait()
		fmt.Println("\nThe camera started at its natural 20ms period and converged to the")
		fmt.Println("fastest consumer's ~60ms period — ARU's min rule, over real sockets.")
	}
}

// pipeline runs an ordinary runtime application — camera → frames →
// display — whose "frames" buffer is the server-hosted channel, mounted
// through the registered "remote" buffer backend. The threads never see
// the wire: the camera's Ctx.Put and the display's Ctx.Get are the same
// unified calls every local backend serves, and Ctx.Sync throttles the
// camera to the summary-STP each put's reply carried back over TCP.
func pipeline(addr string, frames int, displayPeriod time.Duration) error {
	opts := aru.Options{Clock: aru.NewRealClock(), ARU: aru.PolicyMin()}
	if metricsAddr != "" {
		// Wire-level instruments (RTT, redials, timeouts, reattaches)
		// register against the same registry the runtime publishes to, so
		// one scrape covers the whole pipeline including its remote edge.
		opts = aru.WithMetricsAddr(opts, metricsAddr)
	}
	rt := aru.New(opts)
	ch, err := rt.AddRemoteChannel("frames", 0, addr, aru.WithRemoteTuning(tuning))
	if err != nil {
		return err
	}

	camera := rt.MustAddThread("camera", 0, func(ctx *aru.Ctx) error {
		for ts := aru.Timestamp(1); ts <= aru.Timestamp(frames) && !ctx.Stopped(); ts++ {
			ctx.Compute(20 * time.Millisecond) // natural 20ms period
			err := ctx.Put(ctx.Outs()[0], ts, []byte("frame-payload"), 64<<10)
			switch {
			case err == nil:
			case errors.Is(err, aru.ErrReattached):
				// The put succeeded after a transparent redial.
				fmt.Println("pipeline: camera re-attached across a wire fault")
			case errors.Is(err, aru.ErrDegraded):
				// Retry budget spent against an unreachable server: skip
				// this frame; the staleness decay meanwhile returns the
				// camera to its local 20ms pacing.
				fmt.Println("pipeline: camera put degraded (server unreachable); dropping frame")
			default:
				return err
			}
			ctx.Sync() // pace to the feedback that crossed the wire
		}
		return nil
	})
	display := rt.MustAddThread("display", 0, func(ctx *aru.Ctx) error {
		for !ctx.Stopped() {
			if _, err := ctx.Get(ctx.Ins()[0]); err != nil {
				if errors.Is(err, aru.ErrDegraded) {
					continue // server unreachable; keep trying
				}
				if !errors.Is(err, aru.ErrReattached) {
					return err
				}
				// Re-attached mid-get: the item is valid, fall through.
			}
			ctx.Compute(displayPeriod)
			ctx.Sync()
		}
		return nil
	})
	camera.MustOutput(ch)
	display.MustInput(ch)

	if err := rt.Start(); err != nil {
		return err
	}
	if a := rt.MetricsAddr(); a != "" {
		fmt.Printf("pipeline: observability on http://%s/metrics\n", a)
	}

	// Report the camera's target period as the wire feedback moves it,
	// and the hosted channel's degraded/healthy transitions as its
	// summary-STP ages past the staleness TTL (or heals).
	done := make(chan struct{})
	go func() {
		defer close(done)
		var reported aru.STP
		var degraded bool
		for !rt.Stopped() {
			if p := rt.Controller().TargetPeriod(camera.ID()); p != reported && p.Known() {
				fmt.Printf("pipeline: camera target period is now %v\n", p.Duration())
				reported = p
			}
			if d := rt.Controller().Degraded(ch.ID()); d != degraded {
				if d {
					fmt.Println("pipeline: remote feedback is STALE — decaying toward local pacing")
				} else {
					fmt.Println("pipeline: remote feedback is fresh again")
				}
				degraded = d
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	// The camera body returns after the last frame; poll its put count so
	// the display (blocked in a wire get) can be shut down promptly.
	deadline := time.Now().Add(2 * time.Minute)
	for cameraPuts(rt, ch) < int64(frames) && !rt.Stopped() {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	rt.Stop()
	<-done
	if err := rt.Wait(); err != nil && !errors.Is(err, aru.ErrShutdown) {
		return err
	}
	fmt.Printf("pipeline: camera produced %d frames through the wire-backed endpoint\n", frames)
	return nil
}

// cameraPuts reads the endpoint's local put count.
func cameraPuts(rt *aru.Runtime, ch *aru.ChannelRef) int64 {
	if b := rt.Buffer(ch); b != nil {
		puts, _ := b.Stats()
		return puts
	}
	return 0
}

// dialCfg translates the shared tuning flags into a raw connection's
// fault-tolerance configuration.
func dialCfg(addr string) aru.RemoteDialConfig {
	return aru.RemoteDialConfig{
		Addr:        addr,
		Channel:     "frames",
		CallTimeout: tuning.CallTimeout,
		GetTimeout:  tuning.GetTimeout,
		Backoff: aru.RemoteBackoff{
			Base:   tuning.RetryBase,
			Cap:    tuning.RetryCap,
			Factor: tuning.RetryFactor,
			Jitter: tuning.RetryJitter,
		},
		MaxRetries: tuning.MaxRetries,
	}
}

// produce pushes frames, pacing itself to the summary-STP piggybacked on
// each put's reply (the ARU feedback loop, client side).
func produce(addr string, frames int) error {
	prod, err := aru.DialRemoteProducerConfig(dialCfg(addr))
	if err != nil {
		return err
	}
	defer prod.Close()

	const natural = 20 * time.Millisecond
	var reported aru.STP
	for ts := aru.Timestamp(1); ts <= aru.Timestamp(frames); ts++ {
		start := time.Now()
		summary, err := prod.Put(ts, []byte("frame-payload"), 64<<10)
		switch {
		case err == nil:
		case errors.Is(err, aru.ErrReattached):
			fmt.Println("producer: re-attached across a wire fault (put applied once)")
		case errors.Is(err, aru.ErrDegraded):
			fmt.Printf("producer: degraded at frame %d (server unreachable); dropping frame\n", ts)
			continue
		default:
			return err
		}
		if summary != reported {
			fmt.Printf("producer: channel summary-STP is now %v\n", summary)
			reported = summary
		}
		// Pace to max(natural period, downstream feedback).
		target := natural
		if summary.Known() && summary.Duration() > target {
			target = summary.Duration()
		}
		if spent := time.Since(start); spent < target {
			time.Sleep(target - spent)
		}
	}
	fmt.Printf("producer: done after %d frames\n", frames)
	return nil
}

// consume drains the freshest frames at a fixed processing period,
// reporting that period as its summary-STP with every get.
func consume(addr string, period time.Duration, name string) error {
	cons, err := aru.DialRemoteConsumerConfig(dialCfg(addr))
	if err != nil {
		return err
	}
	defer cons.Close()

	got, skipped := 0, 0
	for {
		item, err := cons.GetLatest(aru.STP(period))
		if err != nil && errors.Is(err, aru.ErrReattached) {
			fmt.Printf("%-14s re-attached across a wire fault\n", name)
			err = nil // the item is valid
		}
		if err != nil {
			fmt.Printf("%-14s consumed %3d frames, skipped %3d (server closed)\n", name, got, skipped)
			return aru.ErrShutdown
		}
		got++
		skipped += len(item.SkippedTS)
		time.Sleep(period) // processing
	}
}
