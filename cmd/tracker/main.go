// Command tracker runs one execution of the color-based people tracker
// workload and reports its resource and performance metrics, per-thread
// periods, and per-channel statistics.
//
// Usage:
//
//	go run ./cmd/tracker -policy=min -hosts=1 -duration=120s
//	go run ./cmd/tracker -policy=off -gc=tgc -seed=7
//	go run ./cmd/tracker -policy=max -hosts=5 -series=footprint.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/trace"
	"repro/internal/tracker"
)

func main() {
	var (
		policy   = flag.String("policy", "min", "ARU policy: off, min, max")
		hosts    = flag.Int("hosts", 1, "cluster hosts (1 = paper config 1, 5 = config 2)")
		duration = flag.Duration("duration", 120*time.Second, "virtual run length")
		warmup   = flag.Duration("warmup", 15*time.Second, "virtual warmup discarded before analysis")
		seed     = flag.Int64("seed", 42, "workload seed")
		gcName   = flag.String("gc", "dgc", "garbage collector: dgc, tgc, none")
		series   = flag.String("series", "", "write the footprint-vs-time series to this CSV file")
		traceOut = flag.String("trace", "", "persist the raw execution trace to this file (analyze with cmd/traceview)")
		jsonOut  = flag.Bool("json", false, "emit the run summary as JSON instead of text")
		realtime = flag.Float64("realtime", 0, "run against the wall clock at this speed-up (0 = virtual clock)")

		hotstage  = flag.Bool("hotstage", false, "run the elastic-recovery experiment (balanced vs hot vs hot+elastic) instead of a single run")
		hotfactor = flag.Float64("hotfactor", 3, "hot-stage multiplier on target-detect-1's compute (with -hotstage)")
		outPath   = flag.String("out", "", "with -hotstage: write the report JSON to this file (e.g. BENCH_elastic.json)")
		check     = flag.String("check", "", "with -hotstage: compare against a pinned report and fail on regression")
		tolerance = flag.Float64("tolerance", 0.30, "allowed fractional fps regression under -check")
	)
	flag.Parse()

	if *hotstage {
		runHotStage(*hosts, (*duration).Seconds(), (*warmup).Seconds(), *seed, *hotfactor, *outPath, *check, *tolerance)
		return
	}

	var p core.Policy
	switch *policy {
	case "off", "no", "none":
		p = core.PolicyOff()
	case "min":
		p = core.PolicyMin()
	case "max":
		p = core.PolicyMax()
	default:
		fmt.Fprintf(os.Stderr, "tracker: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	app, err := tracker.New(tracker.Config{
		Hosts:     *hosts,
		Seed:      *seed,
		Policy:    p,
		Collector: gc.ByName(*gcName),
		Scale:     *realtime,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracker: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("color-based people tracker: policy=%s gc=%s hosts=%d duration=%v seed=%d\n",
		p.Name(), *gcName, *hosts, *duration, *seed)
	start := time.Now()
	a, err := app.Run(*duration, *warmup)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("completed in %v wall time\n\n", time.Since(start).Round(time.Millisecond))

	if *jsonOut {
		if err := a.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "tracker: %v\n", err)
			os.Exit(1)
		}
		return
	}

	const mb = 1 << 20
	fmt.Printf("memory footprint:   mean %.2f MB, STD %.2f MB, peak %.2f MB\n",
		a.All.MeanBytes/mb, a.All.StdBytes/mb, a.All.PeakBytes/mb)
	fmt.Printf("IGC lower bound:    mean %.2f MB (footprint is %.0f%% of ideal)\n",
		a.IGC.MeanBytes/mb, 100*a.All.MeanBytes/maxF(a.IGC.MeanBytes, 1))
	fmt.Printf("wasted memory:      %.1f%%    wasted computation: %.1f%%\n", a.WastedMemPct, a.WastedCompPct)
	fmt.Printf("throughput:         %.2f fps (%d outputs)\n", a.ThroughputFPS, a.Outputs)
	fmt.Printf("latency:            mean %v, STD %v (p50 %v, p95 %v, p99 %v)\n",
		a.LatencyMean.Round(time.Millisecond), a.LatencyStd.Round(time.Millisecond),
		a.LatencyP50.Round(time.Millisecond), a.LatencyP95.Round(time.Millisecond),
		a.LatencyP99.Round(time.Millisecond))
	fmt.Printf("jitter:             %v\n", a.Jitter.Round(time.Millisecond))
	fmt.Printf("items:              %d total, %d successful, %d wasted; %d gets, %d skips\n\n",
		a.ItemsTotal, a.ItemsSuccessful, a.ItemsWasted, a.Gets, a.Skips)

	rep := trace.BuildReport(app.Recorder.Events(), a)
	rep.WriteThreads(os.Stdout, app.Runtime.Graph())
	fmt.Println()
	rep.WriteChannels(os.Stdout, app.Runtime.Graph())

	if *traceOut != "" {
		if err := trace.SaveFileNamed(*traceOut, app.Recorder, trace.GraphNames(app.Runtime.Graph())); err != nil {
			fmt.Fprintf(os.Stderr, "tracker: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nexecution trace written to %s\n", *traceOut)
	}

	if *series != "" {
		f, err := os.Create(*series)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracker: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := a.All.Series.WriteCSV(f, "footprint_bytes", *warmup, *duration, 1000); err != nil {
			fmt.Fprintf(os.Stderr, "tracker: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("footprint series written to %s\n", *series)
	}
	_ = bench.Policies // keep the harness linked for discoverability
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
