// The -hotstage mode: the elastic-recovery experiment. One color model
// (target-detect-1) has its per-frame compute multiplied by -hotfactor —
// the "content blew up one kernel" failure the elastic scheduler exists
// for — and the tracker is measured three ways on the virtual clock:
//
//	balanced:     stock timing, no scheduler   (the reference fps)
//	hot:          hot stage, no scheduler      (the damage)
//	hot-elastic:  hot stage + elastic scheduler (the recovery)
//
// The headline invariant, pinned in BENCH_elastic.json and enforced by
// -check: the elastic run recovers at least 90% of the balanced
// throughput, and actually scaled (the recovery is the scheduler's
// doing, not noise). Below-bar cells re-measure best-of-3 before
// failing, mirroring cmd/aru: scheduler noise is one-sided.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/tracker"
)

// hotCell is one measured configuration.
type hotCell struct {
	Name         string  `json:"name"` // balanced | hot | hot-elastic
	FPS          float64 `json:"fps"`
	Outputs      int     `json:"outputs"`
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	ScaleUps     int64   `json:"scale_ups"`
	ScaleDowns   int64   `json:"scale_downs"`
	// ReplicasEnd is the detectors' live replica count at the
	// scheduler's final tick before the run ended.
	ReplicasEnd int `json:"replicas_end"`
}

// hotReport is the BENCH_elastic.json pin format.
type hotReport struct {
	GoVersion string    `json:"go_version"`
	NumCPU    int       `json:"num_cpu"`
	Seconds   float64   `json:"virtual_seconds"`
	Warmup    float64   `json:"warmup_seconds"`
	Seed      int64     `json:"seed"`
	HotFactor float64   `json:"hot_factor"`
	Cells     []hotCell `json:"cells"`
	// RecoveryRatio is fps(hot-elastic) / fps(balanced) — the number the
	// scheduler is judged by.
	RecoveryRatio float64 `json:"recovery_ratio"`
}

// elasticConfig is the scheduler configuration the experiment (and the
// README quickstart) uses: defend a 250ms detector period — comfortably
// above both stock detector costs (185/205ms ± log-normal noise), far
// below the induced hot cost — and scale only the two detection
// kernels, the tracker's data-parallel stages. The margin matters: a
// target inside a stage's noise band parks that stage at the hysteresis
// edge, where even sustain counters eventually admit a flap.
func elasticConfig() sched.Config {
	return sched.Config{
		TargetPeriod: 250 * time.Millisecond,
		Stages:       []string{"target-detect-1", "target-detect-2"},
		// The tracker's periods swing hard (complexity walk ±18%,
		// log-normal noise, shared-bus pressure from every extra
		// incarnation), so retirement demands 2x headroom: a replica is
		// only released if the projected period without it stays under
		// half the target. The default 0.9 band — right for low-variance
		// pipelines — would breathe at this noise level.
		DownBand: 0.5,
	}
}

// measureHotCell runs one configuration for `seconds` of virtual time.
func measureHotCell(name string, hosts int, seconds, warmup float64, seed int64, hotFactor float64, elastic bool) hotCell {
	cfg := tracker.Config{
		Hosts:     hosts,
		Seed:      seed,
		Policy:    core.PolicyMin(),
		Collector: gc.NewDeadTimestamp(),
	}
	var reg *metrics.Registry
	if hotFactor > 1 {
		cfg.HotFactor = hotFactor
	}
	if elastic {
		ec := elasticConfig()
		cfg.Elastic = &ec
		reg = metrics.NewRegistry()
		cfg.Metrics = reg
	}
	app, err := tracker.New(cfg)
	if err != nil {
		fatalHot("build %s: %v", name, err)
	}
	total := time.Duration(seconds * float64(time.Second))
	a, err := app.Run(total, time.Duration(warmup*float64(time.Second)))
	if err != nil {
		fatalHot("run %s: %v", name, err)
	}
	cell := hotCell{
		Name:         name,
		FPS:          a.ThroughputFPS,
		Outputs:      a.Outputs,
		LatencyP50Ms: float64(a.LatencyP50) / float64(time.Millisecond),
	}
	if reg != nil {
		for _, stage := range []string{"target-detect-1", "target-detect-2"} {
			ls := metrics.Labels{"stage": stage}
			cell.ScaleUps += reg.Counter(sched.MetricScaleUps, "", ls).Value()
			cell.ScaleDowns += reg.Counter(sched.MetricScaleDowns, "", ls).Value()
			// The gauge holds the scheduler's last-tick count — the live
			// registry itself has already drained by the time Run returns.
			cell.ReplicasEnd += int(reg.Gauge(sched.MetricReplicas, "", ls).Value())
		}
	}
	return cell
}

// runHotStage executes the three-cell experiment and handles -out/-check.
func runHotStage(hosts int, seconds, warmup float64, seed int64, hotFactor float64, outPath, checkPath string, tol float64) {
	rep := hotReport{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Seconds:   seconds,
		Warmup:    warmup,
		Seed:      seed,
		HotFactor: hotFactor,
	}
	fmt.Printf("elastic recovery experiment: hotfactor=%.1f hosts=%d duration=%.0fs seed=%d\n\n",
		hotFactor, hosts, seconds, seed)
	fmt.Printf("%-12s %7s %8s %12s %9s %11s %9s\n",
		"cell", "fps", "outputs", "p50-lat(ms)", "scale-ups", "scale-downs", "replicas")
	measure := func(name string, factor float64, elastic bool) hotCell {
		c := measureHotCell(name, hosts, seconds, warmup, seed, factor, elastic)
		fmt.Printf("%-12s %7.2f %8d %12.0f %9d %11d %9d\n",
			c.Name, c.FPS, c.Outputs, c.LatencyP50Ms, c.ScaleUps, c.ScaleDowns, c.ReplicasEnd)
		return c
	}
	balanced := measure("balanced", 0, false)
	hot := measure("hot", hotFactor, false)
	elastic := measure("hot-elastic", hotFactor, true)
	rep.Cells = []hotCell{balanced, hot, elastic}
	if balanced.FPS > 0 {
		rep.RecoveryRatio = elastic.FPS / balanced.FPS
	}
	fmt.Printf("\nrecovery ratio: %.3f (hot-elastic %.2f fps / balanced %.2f fps; unaided hot ran %.2f)\n",
		rep.RecoveryRatio, elastic.FPS, balanced.FPS, hot.FPS)

	if outPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatalHot("marshal: %v", err)
		}
		if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
			fatalHot("write %s: %v", outPath, err)
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if checkPath != "" {
		if !runHotCheck(rep, checkPath, tol, hosts, seconds, warmup, seed, hotFactor) {
			os.Exit(1)
		}
	}
}

// runHotCheck validates a fresh report against the pinned one plus the
// recovery invariants. Below-bar cells are re-measured up to twice and
// judged on their best attempt.
func runHotCheck(rep hotReport, path string, tol float64, hosts int, seconds, warmup float64, seed int64, hotFactor float64) bool {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatalHot("read %s: %v", path, err)
	}
	var pinned hotReport
	if err := json.Unmarshal(buf, &pinned); err != nil {
		fatalHot("parse %s: %v", path, err)
	}
	baseline := make(map[string]hotCell, len(pinned.Cells))
	for _, c := range pinned.Cells {
		baseline[c.Name] = c
	}

	ok := true
	fresh := make(map[string]hotCell, len(rep.Cells))
	for _, c := range rep.Cells {
		want, have := baseline[c.Name]
		if have {
			// One-sided fps bar with a small absolute floor; the hot cell is
			// additionally barred from above — if the "damaged" run got fast,
			// the experiment stopped inducing a bottleneck.
			floor := want.FPS*(1-tol) - 0.1
			below := func(c hotCell) bool { return c.FPS < floor }
			for retry := 0; retry < 2 && below(c); retry++ {
				again := measureHotCell(c.Name, hosts, seconds, warmup, seed, cellFactor(c.Name, hotFactor), c.Name == "hot-elastic")
				if again.FPS > c.FPS {
					c = again
				}
			}
			if below(c) {
				ok = false
				fmt.Fprintf(os.Stderr, "REGRESSION %s: %.2f fps (floor %.2f)\n", c.Name, c.FPS, floor)
			}
			if c.Name == "hot" && c.FPS > want.FPS*(1+tol)+0.1 {
				ok = false
				fmt.Fprintf(os.Stderr, "EXPERIMENT %s: %.2f fps above the pinned damage ceiling %.2f — the hot stage is no longer hot\n",
					c.Name, c.FPS, want.FPS*(1+tol)+0.1)
			}
		}
		fresh[c.Name] = c
	}

	// The invariants the scheduler exists for.
	balanced, hot, elastic := fresh["balanced"], fresh["hot"], fresh["hot-elastic"]
	if balanced.FPS > 0 {
		recovery := elastic.FPS / balanced.FPS
		if recovery < 0.90 {
			ok = false
			fmt.Fprintf(os.Stderr, "INVARIANT recovery ratio %.3f below 0.90 (elastic %.2f fps vs balanced %.2f)\n",
				recovery, elastic.FPS, balanced.FPS)
		}
	}
	if hot.FPS > 0 && elastic.FPS < 1.5*hot.FPS {
		ok = false
		fmt.Fprintf(os.Stderr, "INVARIANT hot-elastic %.2f fps not 1.5x above unaided hot %.2f — the scheduler did not help\n",
			elastic.FPS, hot.FPS)
	}
	if elastic.ScaleUps == 0 {
		ok = false
		fmt.Fprintf(os.Stderr, "INVARIANT hot-elastic never scaled up — the recovery is not the scheduler's doing\n")
	}
	if ok {
		fmt.Printf("check against %s passed (tolerance %.0f%%)\n", path, tol*100)
	}
	return ok
}

// cellFactor maps a cell name back to its hot factor for re-measures.
func cellFactor(name string, hotFactor float64) float64 {
	if name == "balanced" {
		return 0
	}
	return hotFactor
}

func fatalHot(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracker -hotstage: "+format+"\n", args...)
	os.Exit(1)
}
