// Command stpsim explores the summary-STP propagation algorithm on the
// paper's Figure 3/4 topology: a producer thread A fanning out to buffers
// B–F, each with one consumer. It prints what each compression operator
// yields for a given backwardSTP vector and how node A's summary evolves
// as its own current-STP changes.
//
// Usage:
//
//	go run ./cmd/stpsim                              # the paper's vector
//	go run ./cmd/stpsim -vec 100,200,300 -current 250
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	var (
		vecFlag = flag.String("vec", "337,139,273,544,420", "summary-STPs (ms) reported by the downstream nodes")
		current = flag.Int("current", 0, "node A's own current-STP in ms (0 = none)")
	)
	flag.Parse()

	var stps []core.STP
	for _, s := range strings.Split(*vecFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "stpsim: bad STP %q\n", s)
			os.Exit(2)
		}
		stps = append(stps, core.STP(time.Duration(v)*time.Millisecond))
	}

	fmt.Printf("backwardSTP vector of node A: %v\n\n", stps)
	fmt.Printf("compressed-backwardSTP (min, the safe default): %v\n", core.Min.Compress(stps))
	fmt.Printf("compressed-backwardSTP (max, aggressive):       %v\n\n", core.Max.Compress(stps))

	for _, comp := range []core.Compressor{core.Min, core.Max} {
		fmt.Printf("--- full propagation with the %s operator ---\n", comp.Name())
		g := graph.New()
		a := g.MustAddNode(graph.KindThread, "A", 0)
		policy := core.Policy{Enabled: true, Compressor: comp}
		type wire struct {
			put, get graph.ConnID
			consumer graph.NodeID
		}
		var wires []wire
		for i := range stps {
			name := fmt.Sprintf("N%d", i)
			ch := g.MustAddNode(graph.KindChannel, name, 0)
			cons := g.MustAddNode(graph.KindThread, name+"-consumer", 0)
			wires = append(wires, wire{
				put: g.MustConnect(a, ch), get: g.MustConnect(ch, cons), consumer: cons,
			})
		}
		ctrl := core.NewController(g, policy)
		for i, w := range wires {
			ctrl.SetCurrentSTP(w.consumer, stps[i])
			ctrl.NoteGet(w.get) // consumer → channel on get
			ctrl.NotePut(w.put) // channel → A on put
			fmt.Printf("after feedback from N%d (%v): A summary = %v\n",
				i, stps[i], ctrl.State(a).Summary())
		}
		if *current > 0 {
			cur := core.STP(time.Duration(*current) * time.Millisecond)
			ctrl.SetCurrentSTP(a, cur)
			fmt.Printf("A reports its own current-STP %v → summary = %v (threads take max(compressed, current))\n",
				cur, ctrl.State(a).Summary())
		}
		fmt.Println()
	}
}
