// Command stpsim explores the summary-STP propagation algorithm on the
// paper's Figure 3/4 topology: a producer thread A fanning out to buffers
// B–F, each with one consumer. It prints what each compression operator
// yields for a given backwardSTP vector and how node A's summary evolves
// as its own current-STP changes.
//
// With -shape it instead runs the estimator pipeline in the time domain:
// a synthetic feedback signal (stepped or jittery) is fed tick by tick
// through the chosen estimator on a manual clock, printing how the
// trendline classifies the signal and how the AIMD controller moves the
// pacing target.
//
// Usage:
//
//	go run ./cmd/stpsim                              # the paper's vector
//	go run ./cmd/stpsim -vec 100,200,300 -current 250
//	go run ./cmd/stpsim -shape jitter -estimator aimd -ticks 40
//	go run ./cmd/stpsim -shape step -estimator raw
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	var (
		vecFlag   = flag.String("vec", "337,139,273,544,420", "summary-STPs (ms) reported by the downstream nodes")
		current   = flag.Int("current", 0, "node A's own current-STP in ms (0 = none)")
		shape     = flag.String("shape", "", "time-domain feedback shape: step or jitter (empty = vector propagation mode)")
		estimator = flag.String("estimator", "aimd", "estimator to drive in -shape mode: raw or aimd")
		ticks     = flag.Int("ticks", 40, "feedback ticks to simulate in -shape mode")
		seed      = flag.Uint64("seed", 1719, "jitter PRNG seed in -shape mode")
	)
	flag.Parse()

	if *shape != "" {
		simulate(*shape, *estimator, *ticks, *seed)
		return
	}

	var stps []core.STP
	for _, s := range strings.Split(*vecFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "stpsim: bad STP %q\n", s)
			os.Exit(2)
		}
		stps = append(stps, core.STP(time.Duration(v)*time.Millisecond))
	}

	fmt.Printf("backwardSTP vector of node A: %v\n\n", stps)
	fmt.Printf("compressed-backwardSTP (min, the safe default): %v\n", core.Min.Compress(stps))
	fmt.Printf("compressed-backwardSTP (max, aggressive):       %v\n\n", core.Max.Compress(stps))

	for _, comp := range []core.Compressor{core.Min, core.Max} {
		fmt.Printf("--- full propagation with the %s operator ---\n", comp.Name())
		g := graph.New()
		a := g.MustAddNode(graph.KindThread, "A", 0)
		policy := core.Policy{Enabled: true, Compressor: comp}
		type wire struct {
			put, get graph.ConnID
			consumer graph.NodeID
		}
		var wires []wire
		for i := range stps {
			name := fmt.Sprintf("N%d", i)
			ch := g.MustAddNode(graph.KindChannel, name, 0)
			cons := g.MustAddNode(graph.KindThread, name+"-consumer", 0)
			wires = append(wires, wire{
				put: g.MustConnect(a, ch), get: g.MustConnect(ch, cons), consumer: cons,
			})
		}
		ctrl := core.NewController(g, policy)
		for i, w := range wires {
			ctrl.SetCurrentSTP(w.consumer, stps[i])
			ctrl.NoteGet(w.get) // consumer → channel on get
			ctrl.NotePut(w.put) // channel → A on put
			fmt.Printf("after feedback from N%d (%v): A summary = %v\n",
				i, stps[i], ctrl.State(a).Summary())
		}
		if *current > 0 {
			cur := core.STP(time.Duration(*current) * time.Millisecond)
			ctrl.SetCurrentSTP(a, cur)
			fmt.Printf("A reports its own current-STP %v → summary = %v (threads take max(compressed, current))\n",
				cur, ctrl.State(a).Summary())
		}
		fmt.Println()
	}
}

// simulate drives one estimator with a synthetic feedback signal on a
// manual clock, one 100ms tick per feedback sample, and prints the
// pipeline's internal view at each tick.
func simulate(shape, estimator string, ticks int, seed uint64) {
	var est core.Estimator
	switch estimator {
	case "raw":
		est = core.NewRawEstimator()
	case "aimd":
		est = core.NewAIMDEstimator(core.DefaultAIMDConfig())
	default:
		fmt.Fprintf(os.Stderr, "stpsim: unknown estimator %q\n", estimator)
		os.Exit(2)
	}
	base := 50 * time.Millisecond
	sample := func(i int) core.STP {
		switch shape {
		case "step":
			// A structural 4x slowdown at the half-way mark.
			if i < ticks/2 {
				return core.STP(base)
			}
			return core.STP(4 * base)
		case "jitter":
			// Uniform ±60% around the base period.
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			span := uint64(2 * base * 6 / 10)
			return core.STP(base - base*6/10 + time.Duration(seed%span))
		default:
			fmt.Fprintf(os.Stderr, "stpsim: unknown shape %q\n", shape)
			os.Exit(2)
			return core.Unknown
		}
	}

	clk := clock.NewManual()
	fmt.Printf("estimator %s on the %s shape, %d ticks of feedback every 100ms:\n\n", est.Name(), shape, ticks)
	fmt.Printf("%5s %12s %12s %12s %10s %9s\n", "tick", "feedback", "target", "estimate", "trend", "phase")
	for i := 0; i < ticks; i++ {
		clk.Advance(100 * time.Millisecond)
		raw := sample(i)
		est.Observe(clk.Now(), graph.ConnID(1), raw, raw)
		st := est.State(clk.Now())
		fmt.Printf("%5d %12v %12v %12v %10s %9s\n",
			i, raw, est.Target(clk.Now(), raw), st.Estimate, st.Trend, st.Phase)
	}
	backoffs := est.State(clk.Now()).Backoffs
	speedups := est.State(clk.Now()).Speedups
	fmt.Printf("\n%d multiplicative back-offs, %d additive speed-ups\n", backoffs, speedups)
}
