// Command traceview analyzes a persisted execution trace (written by
// cmd/tracker -trace or trace.SaveFile) offline: the paper's "postmortem
// analysis program [that] uses these statistics to derive the metrics of
// interest" (§4), as a standalone tool.
//
// Usage:
//
//	go run ./cmd/tracker -trace run.trace
//	go run ./cmd/traceview run.trace
//	go run ./cmd/traceview -from 15s -series footprint.csv run.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		from    = flag.Duration("from", 0, "analysis window start")
		to      = flag.Duration("to", 0, "analysis window end (0 = last event)")
		series  = flag.String("series", "", "write the footprint series to this CSV file")
		points  = flag.Int("points", 1000, "series points")
		jsonOut = flag.Bool("json", false, "emit the summary as JSON")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceview [flags] <trace-file>")
		os.Exit(2)
	}

	events, names, err := trace.LoadFileNamed(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	a, err := trace.AnalyzeEvents(events, trace.AnalyzeOptions{From: *from, To: *to})
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		if err := a.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	const mb = 1 << 20
	fmt.Printf("trace: %d events, window [%v, %v)\n\n", len(events), a.From, a.To)
	fmt.Printf("memory footprint:  mean %.2f MB, STD %.2f MB, peak %.2f MB\n",
		a.All.MeanBytes/mb, a.All.StdBytes/mb, a.All.PeakBytes/mb)
	fmt.Printf("IGC lower bound:   mean %.2f MB\n", a.IGC.MeanBytes/mb)
	fmt.Printf("wasted memory:     %.1f%%   wasted computation: %.1f%%\n", a.WastedMemPct, a.WastedCompPct)
	fmt.Printf("throughput:        %.2f fps (%d outputs)\n", a.ThroughputFPS, a.Outputs)
	fmt.Printf("latency:           mean %v, STD %v   jitter: %v\n",
		a.LatencyMean.Round(time.Millisecond), a.LatencyStd.Round(time.Millisecond),
		a.Jitter.Round(time.Millisecond))
	fmt.Printf("items:             %d total, %d successful, %d wasted; %d gets, %d skips\n\n",
		a.ItemsTotal, a.ItemsSuccessful, a.ItemsWasted, a.Gets, a.Skips)

	rep := trace.BuildReport(events, a)
	rep.WriteThreadsNamed(os.Stdout, names)
	fmt.Println()
	rep.WriteChannelsNamed(os.Stdout, names)

	if len(a.Latencies) > 2 {
		fmt.Println()
		fmt.Printf("latency distribution (%d outputs, p50 %v / p95 %v / p99 %v):\n",
			len(a.Latencies),
			a.LatencyP50.Round(time.Millisecond),
			a.LatencyP95.Round(time.Millisecond),
			a.LatencyP99.Round(time.Millisecond))
		stats.AutoHistogram(a.Latencies, 10).Write(os.Stdout, 40)
	}

	if *series != "" {
		f, err := os.Create(*series)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := a.All.Series.WriteCSV(f, "footprint_bytes", a.From, a.To, *points); err != nil {
			fatal(err)
		}
		fmt.Printf("\nfootprint series written to %s\n", *series)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "traceview: %v\n", err)
	os.Exit(1)
}
