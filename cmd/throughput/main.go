// Command throughput measures sustained items/second through the full
// runtime put/get path — pool, batch entry points, STP piggyback — for
// every in-process backend, and pins the result matrix to a JSON file.
//
// Usage:
//
//	go run ./cmd/throughput                          # print the matrix
//	go run ./cmd/throughput -json BENCH_throughput.json
//	go run ./cmd/throughput -items 200000 -check BENCH_throughput.json
//
// -check re-measures and fails (exit 1) if any configuration regresses
// more than -tolerance (default 20%) below the pinned items/s, so CI can
// catch a throughput regression without trusting absolute numbers across
// machines: the pin is regenerated on the same machine first.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"

	aru "repro"
	"repro/internal/clock"
	"repro/internal/core"
	rt "repro/internal/runtime"
	"repro/internal/vt"
)

// Result is one cell of the measurement matrix.
type Result struct {
	Backend     string  `json:"backend"`
	Producers   int     `json:"producers"`
	Batch       int     `json:"batch"`
	Items       int     `json:"items"`
	Seconds     float64 `json:"seconds"`
	ItemsPerSec float64 `json:"items_per_sec"`
}

// Report is the pinned file format.
type Report struct {
	GoVersion string   `json:"go_version"`
	NumCPU    int      `json:"num_cpu"`
	Results   []Result `json:"results"`
}

func main() {
	var (
		items     = flag.Int("items", 1_000_000, "items per measurement")
		jsonOut   = flag.String("json", "", "write the report to this file")
		check     = flag.String("check", "", "compare against a pinned report and fail on regression")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional regression under -check")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the measurements")
		only      = flag.String("only", "", "measure a single backend (channel, queue, or ring)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	var _ aru.PutSpec // keep the facade types linked so the binary exercises the public wiring

	backends := []string{"channel", "queue", "ring"}
	if *only != "" {
		backends = []string{*only}
	}
	batches := []int{1, 16, 256}
	producerCounts := []int{1, 4}

	var rep Report
	rep.GoVersion = runtime.Version()
	rep.NumCPU = runtime.NumCPU()

	fmt.Printf("%-8s %10s %6s %12s %10s %14s\n", "backend", "producers", "batch", "items", "seconds", "items/s")
	for _, backend := range backends {
		for _, producers := range producerCounts {
			for _, batch := range batches {
				res := measure(backend, producers, batch, *items)
				rep.Results = append(rep.Results, res)
				fmt.Printf("%-8s %10d %6d %12d %10.3f %14.0f\n",
					res.Backend, res.Producers, res.Batch, res.Items, res.Seconds, res.ItemsPerSec)
			}
		}
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("marshal: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *jsonOut, err)
		}
		fmt.Printf("\nwrote %s\n", *jsonOut)
	}

	if *check != "" {
		buf, err := os.ReadFile(*check)
		if err != nil {
			fatal("read %s: %v", *check, err)
		}
		var pinned Report
		if err := json.Unmarshal(buf, &pinned); err != nil {
			fatal("parse %s: %v", *check, err)
		}
		baseline := make(map[string]float64, len(pinned.Results))
		for _, r := range pinned.Results {
			baseline[key(r)] = r.ItemsPerSec
		}
		failed := false
		for _, r := range rep.Results {
			want, ok := baseline[key(r)]
			if !ok {
				continue // new configuration, nothing pinned yet
			}
			// Scheduler noise on shared machines is one-sided — it slows
			// a cell, it never makes one faster than the code allows — so
			// a cell below the bar gets re-measured and judged on its
			// best attempt before it is called a regression.
			best := r.ItemsPerSec
			for retry := 0; retry < 2 && best < want*(1-*tolerance); retry++ {
				again := measure(r.Backend, r.Producers, r.Batch, *items)
				if again.ItemsPerSec > best {
					best = again.ItemsPerSec
				}
			}
			if best < want*(1-*tolerance) {
				failed = true
				fmt.Fprintf(os.Stderr, "REGRESSION %s: %.0f items/s, pinned %.0f (-%.0f%%)\n",
					key(r), best, want, 100*(1-best/want))
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Printf("check against %s passed (tolerance %.0f%%)\n", *check, *tolerance*100)
	}
}

func key(r Result) string {
	return fmt.Sprintf("%s/p%d/b%d", r.Backend, r.Producers, r.Batch)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "throughput: "+format+"\n", args...)
	os.Exit(1)
}

// measure runs one pipeline shape to completion and reports its rate.
// The timed region is first-item-sent to last-item-received, observed by
// the consumer, so runtime construction and teardown stay outside it.
func measure(backend string, producers, batch, items int) Result {
	run := rt.New(rt.Options{Clock: clock.NewReal(), ARU: core.PolicyOff()})

	var ref *rt.BufferRef
	switch backend {
	case "channel":
		// Bounded so a fast producer cannot balloon the live set; the
		// non-power-of-two bound changes nothing for channels.
		ref = run.MustAddChannel("B", 0, rt.WithCapacity(1000))
	case "queue":
		// 1000 is deliberately not a power of two: it keeps the queue a
		// queue (a power-of-two bound would auto-upgrade it to a ring
		// and measure the wrong backend).
		ref = run.MustAddQueue("B", 0, rt.WithCapacity(1000))
	case "ring":
		ref = run.MustAddRing("B", 0, rt.WithCapacity(1024))
	default:
		fatal("unknown backend %q", backend)
	}

	quota := items / producers
	total := quota * producers
	var started atomic.Int64 // first-put wall time, nanos, set once

	// The timed region is first-put to last-put-applied: with the tight
	// capacity bound the producers advance only as fast as the consumer
	// frees slots, so put-side completion is end-to-end throughput minus
	// at most one buffer's worth of residue. Counting on the consumer
	// side would hang on multi-producer channels, where the Latest
	// discipline silently passes items that land below the consumer's
	// frontier — that loss is channel semantics, not a harness bug.
	prodDone := make(chan int64, producers)
	for p := 0; p < producers; p++ {
		base := vt.Timestamp(p*quota + 1)
		run.MustAddThread(fmt.Sprintf("prod%d", p), 0, func(ctx *rt.Ctx) error {
			out := ctx.Outs()[0]
			started.CompareAndSwap(0, time.Now().UnixNano())
			if batch == 1 {
				for k := 0; k < quota; k++ {
					if err := ctx.Put(out, base+vt.Timestamp(k), nil, 64); err != nil {
						return err
					}
				}
			} else {
				specs := make([]rt.PutSpec, 0, batch)
				for k := 0; k < quota; {
					specs = specs[:0]
					for len(specs) < batch && k < quota {
						specs = append(specs, rt.PutSpec{TS: base + vt.Timestamp(k), Size: 64})
						k++
					}
					if _, err := ctx.PutBatch(out, specs); err != nil {
						return err
					}
				}
			}
			prodDone <- time.Now().UnixNano()
			return nil
		}).MustOutput(ref)
	}

	run.MustAddThread("cons", 0, func(ctx *rt.Ctx) error {
		in := ctx.Ins()[0]
		dst := make([]rt.Msg, batch)
		for {
			// Drain until shutdown; the error is the stop signal.
			if _, err := ctx.GetBatch(in, dst); err != nil {
				return nil
			}
		}
	}).MustInput(ref)

	if err := run.Start(); err != nil {
		fatal("start %s: %v", backend, err)
	}
	var finished int64
	for p := 0; p < producers; p++ {
		if at := <-prodDone; at > finished {
			finished = at
		}
	}
	d := time.Duration(finished - started.Load())
	run.Stop()
	run.Wait()

	return Result{
		Backend:     backend,
		Producers:   producers,
		Batch:       batch,
		Items:       total,
		Seconds:     d.Seconds(),
		ItemsPerSec: float64(total) / d.Seconds(),
	}
}
