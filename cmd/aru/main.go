// Command aru benchmarks the estimator pipeline end to end: a fast
// producer paced purely by STP feedback against a bottleneck consumer,
// run once with raw summary propagation (the paper's behaviour) and once
// with the AIMD estimator, across steady, jittery, and stepped consumer
// load shapes. Everything runs on the discrete-event virtual clock with
// a seeded jitter source, so a cell is deterministic up to goroutine
// interleaving and costs milliseconds of wall time per virtual minute.
//
// Per cell it reports the steady-state pacing interval (mean and
// standard deviation — the source-rate jitter), the drop ratio (items a
// Latest-semantics consumer skipped over), and the convergence time (when
// the paced interval first enters and stays inside the steady band).
//
// Usage:
//
//	go run ./cmd/aru                      # print the matrix
//	go run ./cmd/aru -json BENCH_aru.json
//	go run ./cmd/aru -check BENCH_aru.json
//
// -check re-measures and fails (exit 1) if any cell regresses beyond
// -tolerance against the pinned report, or if the headline claim breaks:
// under the jittery consumer the AIMD estimator must hold at least 2x
// lower source-rate jitter than raw at a no-worse drop ratio. Below-bar
// cells are re-measured best-of-3 before failing, mirroring the
// throughput smoke: scheduler noise is one-sided.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/rand"
	rt "repro/internal/runtime"
	"repro/internal/vt"
)

// Result is one cell of the scenario × estimator matrix.
type Result struct {
	Scenario       string  `json:"scenario"`  // steady | jitter | step
	Estimator      string  `json:"estimator"` // raw | aimd
	Produced       int64   `json:"produced"`
	Consumed       int64   `json:"consumed"`
	DropRatio      float64 `json:"drop_ratio"`
	MeanIntervalMs float64 `json:"mean_interval_ms"`
	JitterMs       float64 `json:"jitter_ms"`
	ConvergenceS   float64 `json:"convergence_s"`
}

// Report is the pinned file format.
type Report struct {
	GoVersion string   `json:"go_version"`
	NumCPU    int      `json:"num_cpu"`
	Seconds   float64  `json:"virtual_seconds"`
	Seed      uint64   `json:"seed"`
	Results   []Result `json:"results"`
}

const (
	bottleneck = 50 * time.Millisecond // the consumer's mean period
	jitterAmp  = 30 * time.Millisecond // uniform ± amplitude in the jitter shape
)

func main() {
	var (
		seconds   = flag.Float64("seconds", 60, "virtual seconds per cell")
		seed      = flag.Uint64("seed", 1719, "jitter PRNG seed")
		jsonOut   = flag.String("json", "", "write the report to this file")
		check     = flag.String("check", "", "compare against a pinned report and fail on regression")
		tolerance = flag.Float64("tolerance", 0.30, "allowed fractional regression under -check")
	)
	flag.Parse()

	scenarios := []string{"steady", "jitter", "step"}
	estimators := []string{"raw", "aimd"}

	rep := Report{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Seconds:   *seconds,
		Seed:      *seed,
	}
	fmt.Printf("%-8s %-6s %9s %9s %7s %10s %10s %11s\n",
		"scenario", "est", "produced", "consumed", "drop%", "mean(ms)", "jitter(ms)", "converge(s)")
	for _, sc := range scenarios {
		for _, est := range estimators {
			res := measure(sc, est, *seconds, *seed)
			rep.Results = append(rep.Results, res)
			fmt.Printf("%-8s %-6s %9d %9d %6.1f%% %10.2f %10.2f %11.2f\n",
				res.Scenario, res.Estimator, res.Produced, res.Consumed,
				100*res.DropRatio, res.MeanIntervalMs, res.JitterMs, res.ConvergenceS)
		}
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("marshal: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *jsonOut, err)
		}
		fmt.Printf("\nwrote %s\n", *jsonOut)
	}

	if *check != "" {
		if !runCheck(rep, *check, *tolerance, *seconds, *seed) {
			os.Exit(1)
		}
	}
}

// runCheck validates the fresh matrix against the pinned report plus the
// headline AIMD-vs-raw invariant. Cells below the bar are re-measured up
// to twice and judged on their best attempt.
func runCheck(rep Report, path string, tol, seconds float64, seed uint64) bool {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatal("read %s: %v", path, err)
	}
	var pinned Report
	if err := json.Unmarshal(buf, &pinned); err != nil {
		fatal("parse %s: %v", path, err)
	}
	baseline := make(map[string]Result, len(pinned.Results))
	for _, r := range pinned.Results {
		baseline[r.Scenario+"/"+r.Estimator] = r
	}

	ok := true
	fresh := make(map[string]Result, len(rep.Results))
	for _, r := range rep.Results {
		k := r.Scenario + "/" + r.Estimator
		want, have := baseline[k]
		if have {
			// Absolute floors keep near-zero pins (steady-state jitter is
			// fractions of a millisecond) from demanding exact reproduction.
			bars := [3]float64{
				want.JitterMs*(1+tol) + 0.5,
				want.DropRatio + 0.02,
				want.ConvergenceS*(1+tol) + 0.5,
			}
			below := func(r Result) bool {
				return r.JitterMs > bars[0] || r.DropRatio > bars[1] || r.ConvergenceS > bars[2]
			}
			for retry := 0; retry < 2 && below(r); retry++ {
				again := measure(r.Scenario, r.Estimator, seconds, seed)
				if again.JitterMs < r.JitterMs {
					r.JitterMs = again.JitterMs
				}
				if again.DropRatio < r.DropRatio {
					r.DropRatio = again.DropRatio
				}
				if again.ConvergenceS < r.ConvergenceS {
					r.ConvergenceS = again.ConvergenceS
				}
			}
			if below(r) {
				ok = false
				fmt.Fprintf(os.Stderr,
					"REGRESSION %s: jitter %.2fms (bar %.2f), drop %.3f (bar %.3f), converge %.2fs (bar %.2f)\n",
					k, r.JitterMs, bars[0], r.DropRatio, bars[1], r.ConvergenceS, bars[2])
			}
		}
		fresh[k] = r
	}

	// The headline claim the estimator exists for: under the jittery
	// consumer, AIMD damping buys at least 2x lower source-rate jitter
	// without costing drops.
	raw, aimd := fresh["jitter/raw"], fresh["jitter/aimd"]
	if raw.Produced > 0 && aimd.Produced > 0 {
		if aimd.JitterMs*2 > raw.JitterMs {
			ok = false
			fmt.Fprintf(os.Stderr, "INVARIANT jitter/aimd jitter %.2fms not 2x below jitter/raw %.2fms\n",
				aimd.JitterMs, raw.JitterMs)
		}
		if aimd.DropRatio > raw.DropRatio+0.02 {
			ok = false
			fmt.Fprintf(os.Stderr, "INVARIANT jitter/aimd drop ratio %.3f worse than jitter/raw %.3f\n",
				aimd.DropRatio, raw.DropRatio)
		}
	}
	if ok {
		fmt.Printf("check against %s passed (tolerance %.0f%%)\n", path, tol*100)
	}
	return ok
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aru: "+format+"\n", args...)
	os.Exit(1)
}

// consumerPeriod yields the consumer's compute period for one iteration
// of the given load shape. The jitter source is the shared seeded
// xorshift64 (internal/rand), which reproduces this command's original
// private stream bit for bit — the BENCH_aru.json pin depends on it.
func consumerPeriod(scenario string, rng *rand.Rand, now, total time.Duration) time.Duration {
	switch scenario {
	case "steady":
		return bottleneck
	case "jitter":
		// Uniform on [bottleneck-amp, bottleneck+amp].
		span := 2 * int64(jitterAmp)
		return bottleneck - jitterAmp + time.Duration(int64(rng.Uint64()%uint64(span)))
	case "step":
		// Bottleneck for the first half, twice that for the second: the
		// estimator must track a structural slowdown, not smooth it away.
		if now < total/2 {
			return bottleneck
		}
		return 2 * bottleneck
	default:
		fatal("unknown scenario %q", scenario)
		return 0
	}
}

// measure runs one cell: src -> channel -> consumer on the virtual
// clock, the source paced purely by feedback, and derives the cell's
// statistics from the source's put timestamps.
func measure(scenario, estimator string, seconds float64, seed uint64) Result {
	total := time.Duration(seconds * float64(time.Second))
	clk := clock.NewVirtual()
	policy := core.PolicyMin()
	switch estimator {
	case "raw":
	case "aimd":
		policy = policy.WithEstimator(core.AIMDFactory(core.DefaultAIMDConfig()))
	default:
		fatal("unknown estimator %q", estimator)
	}
	run := rt.New(rt.Options{Clock: clk, ARU: policy})
	ch := run.MustAddChannel("C", 0)

	var putTimes []time.Duration
	var consumed int64
	src := run.MustAddThread("src", 0, func(ctx *rt.Ctx) error {
		out := ctx.Outs()[0]
		var ts vt.Timestamp
		for !ctx.Stopped() {
			ts++
			ctx.Compute(2 * time.Millisecond)
			if err := ctx.Put(out, ts, nil, 64); err != nil {
				return err
			}
			putTimes = append(putTimes, clk.Now())
			ctx.Sync()
		}
		return nil
	})
	cons := run.MustAddThread("cons", 0, func(ctx *rt.Ctx) error {
		in := ctx.Ins()[0]
		rng := rand.New(seed)
		for {
			if _, err := ctx.GetLatest(in); err != nil {
				return err
			}
			consumed++
			ctx.Compute(consumerPeriod(scenario, rng, clk.Now(), total))
			ctx.Sync()
		}
	})
	src.MustOutput(ch)
	cons.MustInput(ch)
	if err := run.RunFor(total); err != nil {
		fatal("%s/%s: %v", scenario, estimator, err)
	}

	res := Result{
		Scenario:  scenario,
		Estimator: estimator,
		Produced:  int64(len(putTimes)),
		Consumed:  consumed,
	}
	if res.Produced > 0 {
		res.DropRatio = 1 - float64(res.Consumed)/float64(res.Produced)
	}
	intervals, starts := intervalsOf(putTimes)
	if len(intervals) == 0 {
		return res
	}

	// Steady-state statistics over the second half of the run: past any
	// cold-start transient, and for the step shape entirely inside the
	// post-step regime, so its convergence number measures how fast the
	// pacing tracked the structural slowdown.
	warmup := total / 2
	var steady []float64
	for i, at := range starts {
		if at >= warmup {
			steady = append(steady, intervals[i])
		}
	}
	if len(steady) == 0 {
		steady = intervals
	}
	mean, std := meanStd(steady)
	res.MeanIntervalMs = mean / float64(time.Millisecond)
	res.JitterMs = std / float64(time.Millisecond)
	res.ConvergenceS = convergence(intervals, starts, mean, total).Seconds()
	return res
}

// intervalsOf converts put timestamps to (interval, interval-start)
// pairs, in clock units.
func intervalsOf(times []time.Duration) (intervals []float64, starts []time.Duration) {
	for i := 1; i < len(times); i++ {
		intervals = append(intervals, float64(times[i]-times[i-1]))
		starts = append(starts, times[i-1])
	}
	return intervals, starts
}

func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}

// convergence finds when the paced interval settled: the start time of
// the first 8-interval window whose rolling mean is within 10% of the
// steady mean and stays within 25% for every later window. If pacing
// never settles the full run length is reported — raw propagation under
// heavy jitter legitimately never converges by this definition.
func convergence(intervals []float64, starts []time.Duration, steadyMean float64, total time.Duration) time.Duration {
	const w = 8
	if len(intervals) < w || steadyMean <= 0 {
		return total
	}
	roll := make([]float64, 0, len(intervals)-w+1)
	sum := 0.0
	for i, x := range intervals {
		sum += x
		if i >= w {
			sum -= intervals[i-w]
		}
		if i >= w-1 {
			roll = append(roll, sum/w)
		}
	}
	// lastBad[i]: does any window at or after i leave the wide band?
	bad := len(roll) // index of the last window violating the wide band, +1
	for i := len(roll) - 1; i >= 0; i-- {
		if math.Abs(roll[i]-steadyMean) > 0.25*steadyMean {
			break
		}
		bad = i
	}
	for i := bad; i < len(roll); i++ {
		if math.Abs(roll[i]-steadyMean) <= 0.10*steadyMean {
			return starts[i]
		}
	}
	return total
}
