// Command pipesim builds and runs an arbitrary linear streaming pipeline
// from a compact spec, making it easy to explore how the ARU policies
// behave on pipelines other than the paper's tracker.
//
// The spec is a '|'-separated list of stages, each "name:compute[:sizeKB]":
// the first stage is the source (producing items of sizeKB, default 64),
// the last is the sink (emitting pipeline outputs), and interior stages
// consume the freshest item, compute, and produce.
//
//	go run ./cmd/pipesim -spec "camera:5ms:512 | filter:20ms:128 | display:60ms"
//	go run ./cmd/pipesim -policy off    # compare against the baseline
//	go run ./cmd/pipesim -all           # run off/min/max side by side
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	aru "repro"
)

type stageSpec struct {
	name    string
	compute time.Duration
	sizeKB  int64
}

func parseSpec(spec string) ([]stageSpec, error) {
	var stages []stageSpec
	for _, part := range strings.Split(spec, "|") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("stage %q: want name:compute[:sizeKB]", part)
		}
		name := strings.TrimSpace(fields[0])
		if name == "" {
			return nil, fmt.Errorf("stage %q: empty name", part)
		}
		compute, err := time.ParseDuration(strings.TrimSpace(fields[1]))
		if err != nil || compute <= 0 {
			return nil, fmt.Errorf("stage %q: bad compute %q", part, fields[1])
		}
		size := int64(64)
		if len(fields) == 3 {
			size, err = strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
			if err != nil || size <= 0 {
				return nil, fmt.Errorf("stage %q: bad sizeKB %q", part, fields[2])
			}
		}
		stages = append(stages, stageSpec{name: name, compute: compute, sizeKB: size})
	}
	if len(stages) < 2 {
		return nil, errors.New("need at least a source and a sink stage")
	}
	seen := map[string]bool{}
	for _, s := range stages {
		if seen[s.name] {
			return nil, fmt.Errorf("duplicate stage name %q", s.name)
		}
		seen[s.name] = true
	}
	return stages, nil
}

func main() {
	var (
		spec     = flag.String("spec", "camera:5ms:512 | filter:20ms:128 | display:60ms", "pipeline spec")
		policy   = flag.String("policy", "min", "ARU policy: off, min, max")
		all      = flag.Bool("all", false, "run all three policies and compare")
		duration = flag.Duration("duration", 30*time.Second, "virtual run length")
	)
	flag.Parse()

	stages, err := parseSpec(*spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pipesim: %v\n", err)
		os.Exit(2)
	}

	var policies []aru.Policy
	if *all {
		policies = []aru.Policy{aru.PolicyOff(), aru.PolicyMin(), aru.PolicyMax()}
	} else {
		switch *policy {
		case "off", "no", "none":
			policies = []aru.Policy{aru.PolicyOff()}
		case "min":
			policies = []aru.Policy{aru.PolicyMin()}
		case "max":
			policies = []aru.Policy{aru.PolicyMax()}
		default:
			fmt.Fprintf(os.Stderr, "pipesim: unknown policy %q\n", *policy)
			os.Exit(2)
		}
	}

	fmt.Printf("pipeline: %s, %v virtual run\n\n", *spec, *duration)
	fmt.Printf("%-8s %10s %10s %12s %12s %12s %10s\n",
		"policy", "produced", "outputs", "mem mean", "wasted mem", "latency", "fps")
	for _, p := range policies {
		a, produced, err := run(stages, p, *duration)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipesim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-8s %10d %10d %9.0f kB %11.1f%% %12v %10.2f\n",
			p.Name(), produced, a.Outputs, a.All.MeanBytes/1024, a.WastedMemPct,
			a.LatencyMean.Round(time.Millisecond), a.ThroughputFPS)
	}
}

func run(stages []stageSpec, policy aru.Policy, duration time.Duration) (*aru.Analysis, int64, error) {
	rec := aru.NewRecorder()
	rt := aru.New(aru.Options{Clock: aru.NewVirtualClock(), ARU: policy, Recorder: rec})

	// One channel between each adjacent stage pair.
	channels := make([]*aru.ChannelRef, len(stages)-1)
	for i := 0; i+1 < len(stages); i++ {
		ref, err := rt.AddChannel(fmt.Sprintf("c%d-%s", i, stages[i].name), 0)
		if err != nil {
			return nil, 0, err
		}
		channels[i] = ref
	}

	var produced int64
	threads := make([]*aru.Thread, len(stages))
	for i, s := range stages {
		i, s := i, s
		var body aru.Body
		switch {
		case i == 0: // source
			body = func(ctx *aru.Ctx) error {
				for ts := aru.Timestamp(1); !ctx.Stopped(); ts++ {
					ctx.Compute(s.compute)
					if err := ctx.Put(ctx.Outs()[0], ts, nil, s.sizeKB<<10); err != nil {
						return err
					}
					produced++
					ctx.Sync()
				}
				return nil
			}
		case i == len(stages)-1: // sink
			body = func(ctx *aru.Ctx) error {
				for {
					if _, err := ctx.Get(ctx.Ins()[0]); err != nil {
						return err
					}
					ctx.Compute(s.compute)
					ctx.Emit()
					ctx.Sync()
				}
			}
		default: // interior
			body = func(ctx *aru.Ctx) error {
				for {
					msg, err := ctx.Get(ctx.Ins()[0])
					if err != nil {
						return err
					}
					ctx.Compute(s.compute)
					if err := ctx.Put(ctx.Outs()[0], msg.TS, nil, s.sizeKB<<10); err != nil {
						return err
					}
					ctx.Sync()
				}
			}
		}
		th, err := rt.AddThread(s.name, 0, body)
		if err != nil {
			return nil, 0, err
		}
		threads[i] = th
	}
	for i := range channels {
		if _, err := threads[i].Output(channels[i]); err != nil {
			return nil, 0, err
		}
		if _, err := threads[i+1].Input(channels[i]); err != nil {
			return nil, 0, err
		}
	}

	if err := rt.RunFor(duration); err != nil {
		return nil, 0, err
	}
	a, err := aru.Analyze(rec, duration/10, duration)
	return a, produced, err
}
