// Command soak runs the lifecycle torture harness: seeded
// kill/restart/chaos/drain cycles over FIFO pipelines on the wall
// clock, asserting the conservation invariant outright —
//
//	produced == delivered + explicitly_shed
//
// with zero duplicates, and a clean drain shedding exactly 0 items.
// Odd cycles (with -remote, the default) route their middle edge over
// a real socket wrapped in faultnet chaos: scripted wire delays, a
// mid-stream sever, and a partition/heal pulse that the reconnect and
// replay machinery must carry the stream across without loss or dup;
// there the wire's latest-discipline skips are accounted explicitly
// and must balance the sink's observed timestamp gaps to the item.
//
// Usage:
//
//	go run ./cmd/soak                      # default: 4 cycles, ~8s
//	go run ./cmd/soak -quick -check        # CI smoke: 2 cycles, exit 1 on violation
//	SOAK_SEED=7 go run ./cmd/soak -check   # reseed the fault schedule
//
// The harness is seeded but wall-clock timed: the fault schedule is
// reproducible, the item counts are not. The oracle is an invariant
// that must hold for every count — that is what -check enforces.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/rand"
	"repro/internal/soak"
)

func main() {
	var (
		seed    = flag.Int64("seed", rand.EnvSeed("SOAK_SEED", 1719), "fault-schedule seed (SOAK_SEED env overrides the default)")
		cycles  = flag.Int("cycles", 4, "build→load→chaos→drain rounds")
		relays  = flag.Int("relays", 3, "relay stages between source and sink")
		kills   = flag.Int("kills", 3, "seeded relay panics per cycle")
		run     = flag.Duration("run", 1500*time.Millisecond, "load phase per cycle")
		drain   = flag.Duration("drain", 10*time.Second, "drain deadline per cycle")
		period  = flag.Duration("period", 2*time.Millisecond, "source production period")
		capFlag = flag.Int("cap", 64, "queue capacity per edge")
		remote  = flag.Bool("remote", true, "route odd cycles over a faultnet-wrapped wire")
		quick   = flag.Bool("quick", false, "CI smoke preset: 2 short cycles (overrides -cycles/-run/-period)")
		check   = flag.Bool("check", false, "exit nonzero if any oracle is violated")
	)
	flag.Parse()

	cfg := soak.Config{
		Seed: *seed, Cycles: *cycles, Relays: *relays, Kills: *kills,
		Run: *run, DrainDeadline: *drain, Period: *period,
		Capacity: *capFlag, Remote: *remote, Out: os.Stdout,
	}
	if *quick {
		cfg = soak.Quick(*seed)
		cfg.Out = os.Stdout
	}

	rep, err := soak.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soak: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\nseed %d: %d cycles, produced %d, delivered %d, drained-after-seal %d, shed %d, wire-skips %d, dups %d\n",
		rep.Seed, len(rep.Cycles), rep.Produced, rep.Delivered, rep.Drained, rep.Shed, rep.Skipped, rep.Dups)
	if rep.OK() {
		fmt.Println("conservation holds: produced == delivered + explicitly_shed (+ accounted wire skips), zero duplicates, clean drains shed 0")
	} else {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "VIOLATION %s\n", v)
		}
		if *check {
			os.Exit(1)
		}
	}
}
