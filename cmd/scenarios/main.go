// Command scenarios runs the seeded scenario matrix — generated
// pipeline DAGs × adversarial load shapes × estimator variants — on the
// discrete-event clock and pins every cell's metric snapshot to a JSON
// file.
//
// Usage:
//
//	go run ./cmd/scenarios                               # print the matrix
//	go run ./cmd/scenarios -json BENCH_scenarios.json
//	go run ./cmd/scenarios -check BENCH_scenarios.json
//	SCENARIO_SEED=7 go run ./cmd/scenarios               # reseed the matrix
//
// Every cell runs under the virtual clock, so its metrics are
// bit-reproducible across machines: -check therefore defaults to exact
// equality (tolerance 0), catching ANY behavioral drift in the runtime,
// the estimators, or the generator — not just large regressions. A
// nonzero -tolerance relaxes the comparison to the headline rates for
// bisecting an intentional behavior change. A cell that misses its pin
// is re-measured best-of-3 before it is called a regression, matching
// the other benches' idiom; for a deterministic bench a mismatch that
// vanishes on re-run is itself reported, since it means the determinism
// contract broke.
//
// The AIMD differential is asserted outright on every (topology, shape)
// pair: the damped estimator must not drop more items than raw
// propagation anywhere in the matrix.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/rand"
	"repro/internal/scenario"
)

// Report is the pinned file format. Go version and CPU count are
// metadata only: virtual-clock cells do not depend on either.
type Report struct {
	GoVersion string                  `json:"go_version"`
	NumCPU    int                     `json:"num_cpu"`
	Seed      uint64                  `json:"seed"`
	Cells     []*scenario.CellMetrics `json:"cells"`
}

// cellSpec is one matrix coordinate.
type cellSpec struct {
	topo, shape, est string
	failures         int
	drain            bool
	elastic          bool
}

func main() {
	var (
		seed      = flag.Uint64("seed", uint64(rand.EnvSeed("SCENARIO_SEED", 1719)), "generator seed (SCENARIO_SEED env overrides the default)")
		duration  = flag.Duration("duration", 4*time.Second, "virtual run length per cell")
		jsonOut   = flag.String("json", "", "write the report to this file")
		check     = flag.String("check", "", "compare against a pinned report and fail on drift")
		tolerance = flag.Float64("tolerance", 0, "allowed fractional drift under -check (0 = exact equality)")
	)
	flag.Parse()

	cells := matrix()
	var rep Report
	rep.GoVersion = runtime.Version()
	rep.NumCPU = runtime.NumCPU()
	rep.Seed = *seed

	fmt.Printf("%-8s %-7s %-5s %6s %9s %9s %6s %7s %10s %9s %8s\n",
		"topology", "shape", "est", "fail", "produced", "emitted", "drops", "ratio", "mu_mean_B", "putp99ms", "restarts")
	drops := map[string]int{} // (topo/shape/failures) → drops per estimator, for the differential
	for _, c := range cells {
		cm := measure(c, *seed, *duration)
		rep.Cells = append(rep.Cells, cm)
		fmt.Printf("%-8s %-7s %-5s %6d %9d %9d %6d %7.3f %10.0f %9.2f %8d\n",
			cm.Topology, cm.Shape, cm.Estimator, c.failures, cm.Produced, cm.Emitted,
			cm.Drops, cm.DropRatio, cm.MUMeanBytes, cm.PutWaitP99Ms, cm.Restarts)
		drops[diffKey(c)+"/"+c.est] = cm.Drops
	}

	// The matrix-wide AIMD differential: damping must not cost drops in
	// any cell. This is the headline invariant, asserted on every run —
	// pinned numbers age, the inequality does not.
	violated := false
	for _, c := range cells {
		if c.est != "aimd" {
			continue
		}
		raw, ok := drops[diffKey(c)+"/raw"]
		if !ok {
			continue
		}
		if aimd := drops[diffKey(c)+"/aimd"]; aimd > raw {
			violated = true
			fmt.Fprintf(os.Stderr, "AIMD REGRESSION %s: aimd dropped %d > raw %d\n", diffKey(c), aimd, raw)
		}
	}
	if violated {
		os.Exit(1)
	}
	fmt.Printf("\nAIMD differential holds across %d cells (aimd drops ≤ raw drops everywhere)\n", len(cells))

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("marshal: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *jsonOut, err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}

	if *check != "" {
		checkAgainst(*check, &rep, cells, *seed, *duration, *tolerance)
	}
}

// matrix enumerates the pinned cells: every topology × load shape for
// both estimators, plus failure-injection cells that exercise the
// supervision path on one topology per estimator.
func matrix() []cellSpec {
	var cells []cellSpec
	for _, topo := range scenario.TopologyNames {
		for _, shape := range scenario.ShapeNames {
			for _, est := range []string{"raw", "aimd"} {
				cells = append(cells, cellSpec{topo, shape, est, 0, false, false})
			}
		}
	}
	cells = append(cells,
		cellSpec{"chain", "steady", "raw", 2, false, false},
		cellSpec{"chain", "steady", "aimd", 2, false, false},
		cellSpec{"diamond", "onoff", "raw", 1, false, false},
		cellSpec{"diamond", "onoff", "aimd", 1, false, false},
	)
	// One drain-mode cell per topology: the run ends with a graceful
	// Runtime.Drain at 3/4 of the duration instead of a hard stop, and
	// the pin covers the drain accounting (drained/shed/clean/duration).
	// On the virtual clock a drain is bit-reproducible like everything
	// else — these cells are the regression oracle for that contract.
	for _, topo := range scenario.TopologyNames {
		cells = append(cells, cellSpec{topo, "steady", "aimd", 0, true, false})
	}
	// One elastic cell per topology: the internal/sched control loop
	// supervises the relay stages and replicates the elected bottleneck.
	// The flash shape gives it something to react to (a load spike mid-
	// run); the pin covers the scale schedule (ups/downs/final replicas)
	// alongside the usual metrics, so any drift in the scheduler's
	// sensor, election, or hysteresis shows up as a cell mismatch.
	for _, topo := range scenario.TopologyNames {
		cells = append(cells, cellSpec{topo, "flash", "aimd", 0, false, true})
	}
	return cells
}

// measure generates and runs one cell with the live metrics registry
// attached, so the pin also covers the metrics-series count (the
// deterministic proxy for metrics-subsystem overhead; behavioral
// neutrality is asserted separately in the scenario test suite).
func measure(c cellSpec, seed uint64, duration time.Duration) *scenario.CellMetrics {
	p := scenario.DefaultParams(seed, c.topo, c.shape)
	p.Duration = duration
	p.Failures = c.failures
	spec, err := scenario.Generate(p)
	if err != nil {
		fatal("generate %s: %v", diffKey(c), err)
	}
	cm, err := scenario.Run(spec, scenario.RunConfig{Estimator: c.est, Metrics: true, Drain: c.drain, Elastic: c.elastic})
	if err != nil {
		fatal("run %s/%s: %v", diffKey(c), c.est, err)
	}
	return cm
}

// diffKey identifies a cell up to the estimator: the unit the AIMD
// differential compares across. Drain and elastic cells carry a suffix
// so they never collide with (and are never compared against) the
// plain runs of the same coordinate.
func diffKey(c cellSpec) string {
	return fmt.Sprintf("%s/%s/f%d%s", c.topo, c.shape, c.failures, variantSuffix(c.drain, c.elastic))
}

func cellKey(cm *scenario.CellMetrics) string {
	return fmt.Sprintf("%s/%s/%s/f%d%s", cm.Topology, cm.Shape, cm.Estimator, cm.Failures, variantSuffix(cm.DrainMode, cm.ElasticMode))
}

func variantSuffix(drain, elastic bool) string {
	switch {
	case drain:
		return "/drain"
	case elastic:
		return "/elastic"
	}
	return ""
}

// checkAgainst compares fresh cells to the pinned report. Tolerance 0
// demands byte-identical metric snapshots (the determinism contract);
// a nonzero tolerance compares only emitted/drops rates fractionally.
func checkAgainst(path string, rep *Report, cells []cellSpec, seed uint64, duration time.Duration, tolerance float64) {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatal("read %s: %v", path, err)
	}
	var pinned Report
	if err := json.Unmarshal(buf, &pinned); err != nil {
		fatal("parse %s: %v", path, err)
	}
	if pinned.Seed != seed {
		fatal("pinned seed %d, running seed %d: a -check run must use the pinned seed", pinned.Seed, seed)
	}
	base := make(map[string]*scenario.CellMetrics, len(pinned.Cells))
	for _, cm := range pinned.Cells {
		base[cellKey(cm)] = cm
	}
	specByKey := make(map[string]cellSpec, len(cells))
	for _, c := range cells {
		specByKey[fmt.Sprintf("%s/%s/%s/f%d%s", c.topo, c.shape, c.est, c.failures, variantSuffix(c.drain, c.elastic))] = c
	}

	failed := false
	for _, cm := range rep.Cells {
		want, ok := base[cellKey(cm)]
		if !ok {
			continue // new cell, nothing pinned yet
		}
		if cellMatches(cm, want, tolerance) {
			continue
		}
		// Best-of-3 before declaring a regression. A deterministic cell
		// re-measures identically; if a retry DOES match, the cell is
		// nondeterministic — a worse finding than the mismatch.
		matched := false
		for retry := 0; retry < 2 && !matched; retry++ {
			again := measure(specByKey[cellKey(cm)], seed, duration)
			matched = cellMatches(again, want, tolerance)
		}
		if matched {
			failed = true
			fmt.Fprintf(os.Stderr, "NONDETERMINISM %s: first run missed the pin, a re-run matched it\n", cellKey(cm))
			continue
		}
		failed = true
		got, _ := json.Marshal(cm)
		exp, _ := json.Marshal(want)
		fmt.Fprintf(os.Stderr, "REGRESSION %s:\n  got  %s\n  want %s\n", cellKey(cm), got, exp)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("check against %s passed (%d cells, tolerance %.0f%%)\n", path, len(pinned.Cells), tolerance*100)
}

// cellMatches compares one cell to its pin. Exact mode compares the
// whole JSON snapshot; tolerant mode compares the headline rates.
func cellMatches(got, want *scenario.CellMetrics, tolerance float64) bool {
	if tolerance == 0 {
		a, _ := json.Marshal(got)
		b, _ := json.Marshal(want)
		return string(a) == string(b)
	}
	return withinFrac(float64(got.Emitted), float64(want.Emitted), tolerance) &&
		withinFrac(float64(got.Drops), float64(want.Drops), tolerance)
}

func withinFrac(got, want, tolerance float64) bool {
	if want == 0 {
		return got == 0
	}
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= want*tolerance
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scenarios: "+format+"\n", args...)
	os.Exit(1)
}
