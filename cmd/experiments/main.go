// Command experiments regenerates every table and figure of the paper's
// evaluation (§5) and checks the qualitative shape claims.
//
// Usage:
//
//	go run ./cmd/experiments                 # full envelope (~10–20 s)
//	go run ./cmd/experiments -quick          # reduced envelope (~2 s)
//	go run ./cmd/experiments -out results/   # also write Fig 8/9 CSVs
//	go run ./cmd/experiments -ascii          # terminal charts of Fig 8/9
//
// Output tables interleave measured and published values as
// "measured|paper" so the reproduction can be judged at a glance.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		duration  = flag.Duration("duration", 180*time.Second, "virtual run length per trial")
		warmup    = flag.Duration("warmup", 20*time.Second, "virtual warmup discarded before analysis")
		seeds     = flag.String("seeds", "11,23,42", "comma-separated trial seeds")
		quick     = flag.Bool("quick", false, "reduced envelope (60s, one seed)")
		out       = flag.String("out", "", "directory to write Figure 8/9 CSV series into")
		ascii     = flag.Bool("ascii", false, "render Figure 8/9 as terminal charts")
		points    = flag.Int("points", 500, "series points per curve")
		ablations = flag.Bool("ablations", false, "also run the ABL1–ABL4 ablation studies")
	)
	flag.Parse()

	envelope := bench.Scenario{Duration: *duration, Warmup: *warmup}
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: bad seed %q: %v\n", s, err)
			os.Exit(2)
		}
		envelope.Seeds = append(envelope.Seeds, v)
	}
	if *quick {
		envelope.Duration = 60 * time.Second
		envelope.Warmup = 10 * time.Second
		envelope.Seeds = envelope.Seeds[:1]
	}

	fmt.Printf("Reproducing the IPDPS'05 ARU evaluation: %v per trial, %d seed(s), warmup %v\n\n",
		envelope.Duration, len(envelope.Seeds), envelope.Warmup)
	start := time.Now()
	suite, err := bench.RunSuite(envelope)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("(12 tracker executions simulated in %v wall time)\n\n", time.Since(start).Round(time.Millisecond))

	suite.WriteAll(os.Stdout)

	if *ascii {
		for _, hosts := range []int{1, 5} {
			fig := map[int]string{1: "Figure 8 (config 1)", 5: "Figure 9 (config 2)"}[hosts]
			fmt.Printf("%s — memory footprint vs time\n\n", fig)
			bench.RenderASCII(os.Stdout, suite.FootprintSeries(hosts, 120), 72, 10)
		}
	}

	if *out != "" {
		paths, err := suite.SaveFigures(*out, *points)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: saving figures: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("Figure series written:")
		for _, p := range paths {
			fmt.Println("  " + p)
		}
		fmt.Println()
	}

	if *ablations {
		abls, err := bench.RunAllAblations(envelope)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: ablations: %v\n", err)
			os.Exit(1)
		}
		for _, ab := range abls {
			ab.Write(os.Stdout)
		}
	}

	checks := suite.CheckShapes()
	failed := bench.FailedShapes(checks)
	fmt.Printf("Shape checks (qualitative claims of §5): %d/%d hold\n", len(checks)-len(failed), len(checks))
	for _, c := range checks {
		status := "PASS"
		if !c.OK {
			status = "FAIL"
		}
		fmt.Printf("  [%s] %-32s %s (%s)\n", status, c.ID, c.Description, c.Detail)
	}
	if len(failed) > 0 {
		os.Exit(1)
	}
}
