// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for paper-versus-measured results):
//
//	BenchmarkFig3MinPropagation       Figure 3 (min operator example)
//	BenchmarkFig4MaxPropagation       Figure 4 (max operator example)
//	BenchmarkFig6MemoryFootprint      Figure 6 (footprint table)
//	BenchmarkFig7WastedResources      Figure 7 (waste table)
//	BenchmarkFig8FootprintSeriesConfig1  Figure 8 (footprint vs time, 1 host)
//	BenchmarkFig9FootprintSeriesConfig2  Figure 9 (footprint vs time, 5 hosts)
//	BenchmarkFig10Performance         Figure 10 (latency/throughput/jitter)
//	BenchmarkAblationSTPFilters       ABL1: summary-STP filters (paper future work)
//	BenchmarkAblationNoiseSensitivity ABL2: scheduling-noise sensitivity of ARU-max
//	BenchmarkAblationGCPolicy         ABL3: GC strategy × ARU interaction
//
// Reported metrics carry the table values (MB, fps, ms, %); ns/op is the
// cost of regenerating the experiment itself.
package aru_test

import (
	"testing"
	"time"

	aru "repro"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
)

// benchEnvelope is the reduced experiment envelope used per benchmark
// iteration: one seed, 60 virtual seconds. cmd/experiments runs the full
// envelope.
func benchEnvelope() aru.Scenario {
	return aru.Scenario{
		Duration: 60 * time.Second,
		Warmup:   10 * time.Second,
		Seeds:    []int64{42},
	}
}

func runSuite(b *testing.B) *aru.Suite {
	b.Helper()
	s, err := aru.RunSuite(benchEnvelope())
	if err != nil {
		b.Fatal(err)
	}
	return s
}

const mb = 1 << 20

// BenchmarkFig3MinPropagation measures the ARU propagation path with the
// min operator on the paper's Figure 3 topology (node A fanning out to
// B–F) and verifies the published compressed value of 139 ms.
func BenchmarkFig3MinPropagation(b *testing.B) {
	benchPropagation(b, aru.PolicyMin(), 139*time.Millisecond)
}

// BenchmarkFig4MaxPropagation is the Figure 4 variant: the max operator
// must compress the same vector to 544 ms.
func BenchmarkFig4MaxPropagation(b *testing.B) {
	benchPropagation(b, aru.PolicyMax(), 544*time.Millisecond)
}

func benchPropagation(b *testing.B, policy aru.Policy, want time.Duration) {
	g := graph.New()
	a := g.MustAddNode(graph.KindThread, "A", 0)
	reports := map[string]aru.STP{
		"B": aru.STP(337 * time.Millisecond), "C": aru.STP(139 * time.Millisecond),
		"D": aru.STP(273 * time.Millisecond), "E": aru.STP(544 * time.Millisecond),
		"F": aru.STP(420 * time.Millisecond),
	}
	type edge struct {
		put, get graph.ConnID
		consumer graph.NodeID
		stp      aru.STP
	}
	var edges []edge
	for _, name := range []string{"B", "C", "D", "E", "F"} {
		ch := g.MustAddNode(graph.KindChannel, name, 0)
		cons := g.MustAddNode(graph.KindThread, name+"-consumer", 0)
		edges = append(edges, edge{
			put: g.MustConnect(a, ch), get: g.MustConnect(ch, cons),
			consumer: cons, stp: reports[name],
		})
	}
	ctrl := core.NewController(g, policy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range edges {
			ctrl.SetCurrentSTP(e.consumer, e.stp)
			ctrl.NoteGet(e.get)
			ctrl.NotePut(e.put)
		}
	}
	b.StopTimer()
	if got := ctrl.State(a).Summary(); got != aru.STP(want) {
		b.Fatalf("summary = %v, want %v", got, want)
	}
	b.ReportMetric(float64(want.Milliseconds()), "summarySTP_ms")
}

// BenchmarkFig6MemoryFootprint regenerates the Figure 6 table.
func BenchmarkFig6MemoryFootprint(b *testing.B) {
	var s *aru.Suite
	for i := 0; i < b.N; i++ {
		s = runSuite(b)
	}
	for _, hosts := range []int{1, 5} {
		cfg := map[int]string{1: "c1", 5: "c2"}[hosts]
		igc := s.IGCReference(hosts)
		b.ReportMetric(igc/mb, "igc_MB_"+cfg)
		b.ReportMetric(s.Results[hosts][bench.NoARU].MeanFootprint/mb, "noaru_MB_"+cfg)
		b.ReportMetric(s.Results[hosts][bench.ARUMin].MeanFootprint/mb, "arumin_MB_"+cfg)
		b.ReportMetric(s.Results[hosts][bench.ARUMax].MeanFootprint/mb, "arumax_MB_"+cfg)
	}
}

// BenchmarkFig7WastedResources regenerates the Figure 7 table.
func BenchmarkFig7WastedResources(b *testing.B) {
	var s *aru.Suite
	for i := 0; i < b.N; i++ {
		s = runSuite(b)
	}
	for _, hosts := range []int{1, 5} {
		cfg := map[int]string{1: "c1", 5: "c2"}[hosts]
		for _, p := range bench.Policies {
			r := s.Results[hosts][p]
			tag := map[bench.PolicyName]string{bench.NoARU: "noaru", bench.ARUMin: "arumin", bench.ARUMax: "arumax"}[p]
			b.ReportMetric(r.WastedMemPct, tag+"_wastedmem_pct_"+cfg)
			b.ReportMetric(r.WastedCompPct, tag+"_wastedcomp_pct_"+cfg)
		}
	}
}

// BenchmarkFig8FootprintSeriesConfig1 regenerates the Figure 8 series
// (footprint versus time, one host) and reports each panel's peak.
func BenchmarkFig8FootprintSeriesConfig1(b *testing.B) {
	benchFootprintSeries(b, 1)
}

// BenchmarkFig9FootprintSeriesConfig2 is the Figure 9 (five hosts)
// variant.
func BenchmarkFig9FootprintSeriesConfig2(b *testing.B) {
	benchFootprintSeries(b, 5)
}

func benchFootprintSeries(b *testing.B, hosts int) {
	var s *aru.Suite
	for i := 0; i < b.N; i++ {
		s = runSuite(b)
	}
	panels := s.FootprintSeries(hosts, 500)
	if len(panels) != 4 {
		b.Fatalf("panels = %d", len(panels))
	}
	for _, p := range panels {
		var peak float64
		for _, v := range p.Bytes {
			if v > peak {
				peak = v
			}
		}
		b.ReportMetric(peak/mb, p.Name+"_peak_MB")
	}
}

// BenchmarkFig10Performance regenerates the Figure 10 table.
func BenchmarkFig10Performance(b *testing.B) {
	var s *aru.Suite
	for i := 0; i < b.N; i++ {
		s = runSuite(b)
	}
	for _, hosts := range []int{1, 5} {
		cfg := map[int]string{1: "c1", 5: "c2"}[hosts]
		for _, p := range bench.Policies {
			r := s.Results[hosts][p]
			tag := map[bench.PolicyName]string{bench.NoARU: "noaru", bench.ARUMin: "arumin", bench.ARUMax: "arumax"}[p]
			b.ReportMetric(r.ThroughputMean, tag+"_fps_"+cfg)
			b.ReportMetric(float64(r.LatencyMean.Milliseconds()), tag+"_lat_ms_"+cfg)
			b.ReportMetric(float64(r.Jitter.Milliseconds()), tag+"_jitter_ms_"+cfg)
		}
	}
}

// BenchmarkAblationSTPFilters measures the paper's future-work extension
// (§3.3.2): smoothing the noisy summary-STP stream with feedback filters
// under the aggressive max operator, where noise hurts most.
func BenchmarkAblationSTPFilters(b *testing.B) {
	filters := []struct {
		name string
		mk   func() aru.Filter
	}{
		{"none", nil},
		{"ewma", func() aru.Filter { return aru.NewEWMAFilter(0.3) }},
		{"median", func() aru.Filter { return aru.NewMedianFilter(5) }},
	}
	for _, f := range filters {
		f := f
		b.Run(f.name, func(b *testing.B) {
			var r *bench.Result
			for i := 0; i < b.N; i++ {
				sc := benchEnvelope()
				sc.Policy = bench.ARUMax
				sc.Hosts = 1
				sc.Mutate = func(cfg *aru.TrackerConfig) {
					if f.mk != nil {
						cfg.Policy.NewFilter = func() aru.Filter { return f.mk() }
					}
				}
				var err error
				r, err = aru.RunScenario(sc)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Jitter.Milliseconds()), "jitter_ms")
			b.ReportMetric(r.ThroughputMean, "fps")
			b.ReportMetric(r.MeanFootprint/mb, "mem_MB")
		})
	}
}

// BenchmarkAblationNoiseSensitivity sweeps the injected
// scheduling-variance σ and reports ARU-max throughput — quantifying the
// paper's §5.2 explanation that STP noise plus aggressive slowing starves
// consumers.
func BenchmarkAblationNoiseSensitivity(b *testing.B) {
	for _, sigma := range []float64{0.02, 0.12, 0.30} {
		sigma := sigma
		b.Run(sigmaName(sigma), func(b *testing.B) {
			var r *bench.Result
			for i := 0; i < b.N; i++ {
				sc := benchEnvelope()
				sc.Policy = bench.ARUMax
				sc.Hosts = 5
				sc.Mutate = func(cfg *aru.TrackerConfig) {
					t := cfg.Timing
					if t == (aru.TrackerTiming{}) {
						t = aru.DefaultTrackerTiming()
					}
					t.NoiseSigma = sigma
					cfg.Timing = t
				}
				var err error
				r, err = aru.RunScenario(sc)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.ThroughputMean, "fps")
			b.ReportMetric(float64(r.Jitter.Milliseconds()), "jitter_ms")
		})
	}
}

func sigmaName(s float64) string {
	switch {
	case s < 0.05:
		return "sigma_low"
	case s < 0.2:
		return "sigma_paper"
	default:
		return "sigma_high"
	}
}

// BenchmarkAblationGCPolicy crosses the GC strategies with ARU-min: DGC
// and ARU compose (the paper's configuration), TGC retains more, and
// no-GC shows ARU alone cannot bound memory.
func BenchmarkAblationGCPolicy(b *testing.B) {
	for _, coll := range []string{"dgc", "tgc", "none"} {
		coll := coll
		b.Run(coll, func(b *testing.B) {
			var r *bench.Result
			for i := 0; i < b.N; i++ {
				sc := benchEnvelope()
				sc.Policy = bench.ARUMin
				sc.Hosts = 1
				sc.Collector = coll
				var err error
				r, err = aru.RunScenario(sc)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.MeanFootprint/mb, "mem_MB")
			b.ReportMetric(r.ThroughputMean, "fps")
		})
	}
}

// BenchmarkAblationDeadElimination is ABL4: §3.2's dead-timestamp
// computation elimination without ARU — the paper's "limited success"
// baseline that motivates rate feedback in the first place.
func BenchmarkAblationDeadElimination(b *testing.B) {
	for _, v := range []struct {
		name      string
		policy    bench.PolicyName
		eliminate bool
	}{
		{"noaru", bench.NoARU, false},
		{"noaru_elim", bench.NoARU, true},
		{"arumin", bench.ARUMin, false},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var r *bench.Result
			for i := 0; i < b.N; i++ {
				sc := benchEnvelope()
				sc.Policy = v.policy
				sc.Hosts = 1
				elim := v.eliminate
				sc.Mutate = func(cfg *aru.TrackerConfig) { cfg.EliminateDeadComputations = elim }
				var err error
				r, err = aru.RunScenario(sc)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.MeanFootprint/mb, "mem_MB")
			b.ReportMetric(r.WastedCompPct, "wastedcomp_pct")
		})
	}
}

// --- micro-benchmarks on the core primitives --------------------------

// BenchmarkCompressMin measures the min operator on the paper's vector.
func BenchmarkCompressMin(b *testing.B) {
	vec := []aru.STP{337e6, 139e6, 273e6, 544e6, 420e6}
	for i := 0; i < b.N; i++ {
		if aru.MinCompressor.Compress(vec) != 139e6 {
			b.Fatal("wrong compression")
		}
	}
}

// BenchmarkCompressMax measures the max operator on the paper's vector.
func BenchmarkCompressMax(b *testing.B) {
	vec := []aru.STP{337e6, 139e6, 273e6, 544e6, 420e6}
	for i := 0; i < b.N; i++ {
		if aru.MaxCompressor.Compress(vec) != 544e6 {
			b.Fatal("wrong compression")
		}
	}
}
