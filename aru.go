// Package aru is the public surface of this reproduction of "Adaptive
// Resource Utilization via Feedback Control for Streaming Applications"
// (Mandviwala, Harel, Ramachandran, Knobe — IPDPS 2005).
//
// It re-exports the building blocks an application author needs:
//
//   - The Stampede-style runtime: timestamped channels and queues, a
//     declared task graph, one goroutine per thread, dead-timestamp
//     garbage collection, and a simulated cluster substrate
//     (buses + links) for resource accounting.
//
//   - The ARU mechanism itself: per-thread sustainable-thread-period
//     (STP) measurement via Ctx.Sync (the paper's periodicity_sync()),
//     backward propagation of summary-STPs piggybacked on every put/get,
//     min/max/user-defined compression operators, and automatic source
//     throttling.
//
//   - The evaluation workload (the color-based people tracker) and the
//     experiment harness that regenerates every table and figure of the
//     paper (see EXPERIMENTS.md).
//
// A minimal application:
//
//	clk := aru.NewVirtualClock()
//	rt := aru.New(aru.Options{Clock: clk, ARU: aru.PolicyMin()})
//	ch := rt.MustAddChannel("frames", 0)
//	src := rt.MustAddThread("camera", 0, func(ctx *aru.Ctx) error {
//	    for ts := aru.Timestamp(1); !ctx.Stopped(); ts++ {
//	        ctx.Compute(5 * time.Millisecond)
//	        if err := ctx.Put(ctx.Outs()[0], ts, nil, 1<<20); err != nil {
//	            return err
//	        }
//	        ctx.Sync() // measures STP; throttles to downstream feedback
//	    }
//	    return nil
//	})
//	src.MustOutput(ch)
//	// ... consumers via rt.MustAddThread + thread.MustInput(ch) ...
//	err := rt.RunFor(10 * time.Second)
package aru

import (
	"time"

	"repro/internal/backoff"
	"repro/internal/bench"
	"repro/internal/buffer"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/gc"
	"repro/internal/graph"
	"repro/internal/kiosk"
	"repro/internal/metrics"
	"repro/internal/remote"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/tracker"
	"repro/internal/transport"
	"repro/internal/vt"
)

// Core runtime types.
type (
	// Runtime is one streaming application instance.
	Runtime = runtime.Runtime
	// Options configures a Runtime.
	Options = runtime.Options
	// Ctx is the per-thread execution context.
	Ctx = runtime.Ctx
	// Msg is a consumed item as seen by a thread body.
	Msg = runtime.Msg
	// Body is a thread's task loop.
	Body = runtime.Body
	// Thread is a declared computation thread.
	Thread = runtime.Thread
	// BufferRef is an endpoint descriptor for any declared buffer; a
	// registered backend materializes it at Start.
	BufferRef = runtime.BufferRef
	// ChannelRef names a declared channel.
	ChannelRef = runtime.ChannelRef
	// QueueRef names a declared queue.
	QueueRef = runtime.QueueRef
	// BufferOption customizes a buffer declaration (capacity, remote
	// name, remote fault-tolerance tuning, ...).
	BufferOption = runtime.BufferOption
	// Buffer is the pluggable buffer-endpoint interface every backend
	// (channel, queue, remote, ...) implements.
	Buffer = buffer.Buffer
	// BufferCaps describes what a buffer backend supports.
	BufferCaps = buffer.Caps
	// InPort is a thread input connection.
	InPort = runtime.InPort
	// OutPort is a thread output connection.
	OutPort = runtime.OutPort
	// PutSpec describes one item of a batched Ctx.PutBatch call.
	PutSpec = runtime.PutSpec
	// ItemPool recycles buffer item allocations; each Runtime owns one,
	// shared by every in-process backend it materializes.
	ItemPool = buffer.ItemPool
)

// Virtual time.
type (
	// Timestamp indexes the application's virtual time.
	Timestamp = vt.Timestamp
)

// Virtual-time bounds.
const (
	// TimestampNone sorts before every valid timestamp.
	TimestampNone = vt.None
	// TimestampInfinity sorts after every valid timestamp.
	TimestampInfinity = vt.Infinity
)

// ARU mechanism types.
type (
	// Policy selects the feedback behaviour of a run.
	Policy = core.Policy
	// STP is a sustainable thread period.
	STP = core.STP
	// Compressor folds a backwardSTP vector.
	Compressor = core.Compressor
	// CompressorFunc adapts a user-defined compression function.
	CompressorFunc = core.Func
	// Filter smooths incoming summary-STP streams (extension).
	Filter = core.Filter
	// Estimator is the pluggable feedback-estimation stage between
	// compressed summary-STPs and the pacing throttle (extension,
	// DESIGN.md §4h). Nil factory = the paper's raw propagation.
	Estimator = core.Estimator
	// EstimatorFactory builds a fresh estimator per thread node; plug it
	// in via Policy.WithEstimator (or Policy.EstimatorFactory).
	EstimatorFactory = core.EstimatorFactory
	// EstimatorState is an estimator's observable state (status output,
	// metrics, Snapshot).
	EstimatorState = core.EstimatorState
	// AIMDConfig tunes the AIMD estimator: window, back-off factor,
	// additive step, hysteresis margin, sustain threshold, trend gain,
	// target bounds, expiry. The zero value of every field selects a
	// sensible default.
	AIMDConfig = core.AIMDConfig
	// TrendState classifies the feedback trend (underuse/hold/overuse).
	TrendState = core.TrendState
	// AIMDPhase is the rate controller's actuation phase
	// (backoff/hold/speedup).
	AIMDPhase = core.AIMDPhase
)

// Trend and phase constants, re-exported for switch statements over
// EstimatorState.
const (
	TrendUnderuse = core.TrendUnderuse
	TrendHold     = core.TrendHold
	TrendOveruse  = core.TrendOveruse
	PhaseBackoff  = core.PhaseBackoff
	PhaseHold     = core.PhaseHold
	PhaseSpeedup  = core.PhaseSpeedup
)

// Clock abstraction.
type (
	// Clock supplies runtime time.
	Clock = clock.Clock
)

// Cluster simulation.
type (
	// Cluster bundles per-host buses and the interconnect.
	Cluster = transport.Cluster
	// ClusterSpec configures a simulated cluster.
	ClusterSpec = transport.ClusterSpec
	// LinkSpec describes a network link.
	LinkSpec = transport.LinkSpec
)

// Garbage collection.
type (
	// Collector decides which items of a channel are dead.
	Collector = gc.Collector
)

// Measurement.
type (
	// Recorder collects trace events.
	Recorder = trace.Recorder
	// Analysis is the postmortem result.
	Analysis = trace.Analysis
)

// Graph identities.
type (
	// NodeID identifies a task-graph node.
	NodeID = graph.NodeID
	// ConnID identifies a task-graph connection.
	ConnID = graph.ConnID
)

// ErrShutdown reports that an operation was interrupted by Stop; thread
// bodies return it (or the error wrapping it) for a clean exit.
var ErrShutdown = runtime.ErrShutdown

// ErrDraining reports a put rejected because the runtime (or the target
// buffer) is draining gracefully: sources are quiesced and no new work
// is admitted while the backlog flushes. Bodies should return it; the
// supervisor treats it as a clean exit, exactly like ErrShutdown.
var ErrDraining = runtime.ErrDraining

// ErrPortKind reports a get/put variant the port's buffer backend does
// not support (e.g. GetQueue on a channel input, a windowed input on a
// FIFO queue): a typed wiring/call-time error, never a panic.
var ErrPortKind = runtime.ErrPortKind

// ErrDegraded reports that a wire-backed put/get exhausted its redial
// and retry budget against an unreachable server. The connection is not
// torn down: the next operation retries from scratch, and ARU's
// staleness decay meanwhile returns upstream producers to local pacing.
var ErrDegraded = runtime.ErrDegraded

// ErrReattached is informational: the operation SUCCEEDED, but only
// after the client redialed the server and replayed its attachment.
// Results returned alongside it are valid; filter it with errors.Is
// when only hard failures matter.
var ErrReattached = runtime.ErrReattached

// ErrPeerFailed reports that a get or put can never complete because
// every peer on the other side of the buffer failed permanently — the
// supervision subsystem's failure propagation. Bodies should return it;
// the cascade is deliberate and resolves whole dead subgraphs instead
// of hanging them.
var ErrPeerFailed = runtime.ErrPeerFailed

// Thread supervision (panic containment, restart policies, stall
// watchdog — see Options.StallTTL and AddThread options).
type (
	// ThreadOption configures a thread's supervision at AddThread time.
	ThreadOption = runtime.ThreadOption
	// RestartPolicy shapes supervised restarts: backoff schedule,
	// budget, sliding window, seed.
	RestartPolicy = runtime.RestartPolicy
	// Backoff is the capped-exponential-with-jitter delay schedule
	// shared by restart supervision and remote redialing.
	Backoff = backoff.Backoff
	// ThreadFailure is one contained body failure: a recovered panic
	// (Value, Stack) or a non-shutdown error return (Err).
	ThreadFailure = runtime.ThreadFailure
	// ThreadState is a thread's supervision lifecycle state.
	ThreadState = runtime.ThreadState
	// ThreadHealth is the supervision snapshot of one thread.
	ThreadHealth = runtime.ThreadHealth
	// HealthSnapshot is Runtime.Health()'s application-wide view.
	HealthSnapshot = runtime.HealthSnapshot
	// DrainReport is the outcome of a graceful Runtime.Drain: duration,
	// totals of flushed (drained) and explicitly-shed items, and the
	// per-buffer accounting behind the conservation invariant
	// produced == delivered + shed.
	DrainReport = runtime.DrainReport
	// BufferDrain is one buffer's drain accounting in a DrainReport.
	BufferDrain = runtime.BufferDrain
)

// Thread lifecycle states.
const (
	// StateNew is a declared thread before Start.
	StateNew = runtime.StateNew
	// StateRunning is a thread whose body is executing.
	StateRunning = runtime.StateRunning
	// StateRestarting is a failed thread sleeping its restart backoff.
	StateRestarting = runtime.StateRestarting
	// StateFailed is a permanently failed thread.
	StateFailed = runtime.StateFailed
	// StateStopped is a thread that exited cleanly.
	StateStopped = runtime.StateStopped
)

// WithRestartOnFailure enables supervised restarts for a thread: panics
// and non-shutdown errors restart the body on p's backoff schedule
// until the budget is exhausted, then the thread fails permanently and
// its peers observe ErrPeerFailed. Without it the first failure is
// permanent (RestartNever) — contained and propagated, never a crash.
func WithRestartOnFailure(p RestartPolicy) ThreadOption {
	return runtime.WithRestartOnFailure(p)
}

// WithStallTTL sets a per-thread heartbeat TTL for the stall watchdog,
// overriding Options.StallTTL.
func WithStallTTL(ttl time.Duration) ThreadOption {
	return runtime.WithStallTTL(ttl)
}

// WithTenant tags a declared buffer with a tenant/pipeline name; the tag
// rides on all its metric instruments as a `tenant` label so
// multi-tenant runs sharing one registry stay distinguishable.
func WithTenant(name string) BufferOption {
	return runtime.WithTenant(name)
}

// WithThreadTenant is WithTenant for threads.
func WithThreadTenant(name string) ThreadOption {
	return runtime.WithThreadTenant(name)
}

// RegisterBufferBackend adds a buffer backend to the registry, making it
// available to endpoint descriptors by name. The built-ins are
// "channel", "queue", and "remote".
func RegisterBufferBackend(name string, b buffer.Backend) { buffer.Register(name, b) }

// BufferBackend pairs a backend factory with its capabilities for
// RegisterBufferBackend.
type BufferBackend = buffer.Backend

// New creates a runtime.
func New(opts Options) *Runtime { return runtime.New(opts) }

// PolicyOff returns the No-ARU baseline policy.
func PolicyOff() Policy { return core.PolicyOff() }

// PolicyMin returns ARU with the conservative min compression operator,
// the paper's safe default: producers sustain their fastest consumer.
func PolicyMin() Policy { return core.PolicyMin() }

// PolicyMax returns ARU with the aggressive max operator: producers slow
// to their slowest consumer, correct when downstream data dependencies
// make faster production pure waste.
func PolicyMax() Policy { return core.PolicyMax() }

// MinCompressor and MaxCompressor are the built-in operators, exposed for
// per-node overrides via Policy.PerNode.
var (
	MinCompressor = core.Min
	MaxCompressor = core.Max
)

// NewEWMAFilter returns an exponentially-weighted-moving-average
// summary-STP filter (the paper's future-work extension).
func NewEWMAFilter(alpha float64) Filter { return core.NewEWMAFilter(alpha) }

// NewMedianFilter returns a sliding-window median summary-STP filter.
func NewMedianFilter(window int) Filter { return core.NewMedianFilter(window) }

// NewAIMDEstimator returns an EstimatorFactory building the filtered,
// AIMD-damped estimator: a sliding-window rate estimate, a trendline
// slope filter, and multiplicative-backoff/additive-speedup pacing
// (DESIGN.md §4h). Plug it in with PolicyMin().WithEstimator(...).
func NewAIMDEstimator(cfg AIMDConfig) EstimatorFactory { return core.AIMDFactory(cfg) }

// NewRawEstimator returns the pass-through estimator backend: the pacing
// target is the raw summary-STP, exactly the paper's behaviour. Leaving
// the factory nil is equivalent and cheaper.
func NewRawEstimator() Estimator { return core.NewRawEstimator() }

// DefaultAIMDConfig returns the default AIMD estimator tuning.
func DefaultAIMDConfig() AIMDConfig { return core.DefaultAIMDConfig() }

// NewVirtualClock returns the discrete-event clock: simulated time jumps
// to the next deadline whenever all threads are blocked, so experiments
// run as fast as the host executes them with exact virtual timing.
func NewVirtualClock() Clock { return clock.NewVirtual() }

// NewRealClock returns a wall clock.
func NewRealClock() Clock { return clock.NewReal() }

// NewScaledClock returns a wall clock running scale× faster than real
// time.
func NewScaledClock(scale float64) Clock {
	return clock.NewScaled(clock.NewReal(), scale)
}

// NewCluster builds a simulated cluster on the given clock.
func NewCluster(clk Clock, spec ClusterSpec) *Cluster {
	return transport.NewCluster(clk, spec)
}

// GigabitEthernet approximates the paper's interconnect.
var GigabitEthernet = transport.GigabitEthernet

// NewRecorder returns an empty trace recorder.
func NewRecorder() *Recorder { return trace.NewRecorder() }

// Analyze runs the postmortem analysis over [from, to) of a recorder's
// events (to=0 means the last event).
func Analyze(r *Recorder, from, to time.Duration) (*Analysis, error) {
	return trace.Analyze(r, trace.AnalyzeOptions{From: from, To: to})
}

// Garbage collectors.
var (
	// NewDGC returns the dead-timestamp collector (the paper's setup).
	NewDGC = gc.NewDeadTimestamp
	// NewTGC returns the transparent global-virtual-time collector.
	NewTGC = gc.NewTransparent
	// NewNoGC returns the collector that never frees.
	NewNoGC = gc.NewNone
)

// Tracker workload.
type (
	// TrackerConfig assembles one tracker run.
	TrackerConfig = tracker.Config
	// TrackerApp is a built tracker application.
	TrackerApp = tracker.App
	// TrackerTiming holds the stage periods.
	TrackerTiming = tracker.Timing
	// TrackerSizes holds the per-item sizes.
	TrackerSizes = tracker.Sizes
)

// NewTracker builds the color-based people tracker workload.
func NewTracker(cfg TrackerConfig) (*TrackerApp, error) { return tracker.New(cfg) }

// DefaultTrackerTiming returns the calibrated tracker stage periods.
func DefaultTrackerTiming() TrackerTiming { return tracker.DefaultTiming() }

// Kiosk workload (the paper's Figure 1 two-fidelity pipeline).
type (
	// KioskConfig assembles one smart-kiosk run.
	KioskConfig = kiosk.Config
	// KioskApp is a built kiosk application.
	KioskApp = kiosk.App
)

// NewKiosk builds the Figure 1 smart-kiosk pipeline: digitizer → low-fi
// tracker → decision (queue) → high-fi tracker → GUI.
func NewKiosk(cfg KioskConfig) (*KioskApp, error) { return kiosk.New(cfg) }

// PaperTrackerSizes returns the paper's per-item sizes (738 kB frames,
// 246 kB masks, 981 kB histogram models, 68 B locations).
func PaperTrackerSizes() TrackerSizes { return tracker.PaperSizes() }

// Experiment harness.
type (
	// Scenario describes one experiment cell.
	Scenario = bench.Scenario
	// Suite holds the full evaluation grid.
	Suite = bench.Suite
	// ShapeCheck is one qualitative expectation from the paper.
	ShapeCheck = bench.ShapeCheck
)

// Distributed operation over real sockets.
type (
	// RemoteServer hosts channels for remote producers and consumers
	// over TCP, with summary-STP feedback piggybacked on the protocol.
	RemoteServer = remote.Server
	// RemoteServerConfig configures a RemoteServer.
	RemoteServerConfig = remote.ServerConfig
	// RemoteProducer is a remote producer connection.
	RemoteProducer = remote.Producer
	// RemoteConsumer is a remote consumer connection.
	RemoteConsumer = remote.Consumer
	// RemoteItem is one item consumed over the wire.
	RemoteItem = remote.Item
	// RemoteTuning shapes a wire-backed endpoint's fault tolerance:
	// call/get deadlines, redial backoff, retry budget, and the
	// summary-STP staleness TTL. Pass it via WithRemoteTuning.
	RemoteTuning = buffer.RemoteTuning
	// RemoteBackoff parameterizes capped exponential redial backoff
	// with symmetric jitter for raw remote connections.
	RemoteBackoff = remote.Backoff
	// RemoteDialConfig configures a raw fault-tolerant producer or
	// consumer connection (DialRemoteProducerConfig and friends).
	RemoteDialConfig = remote.DialConfig
)

// WithCapacity bounds a declared buffer to n items (0 = unbounded).
// A bounded power-of-two queue with a single consumer is eligible for
// the transparent lock-free ring upgrade, and an explicit AddRing
// requires a bound (DESIGN.md §4g).
func WithCapacity(n int) BufferOption {
	return runtime.WithCapacity(n)
}

// WithRemoteTuning sets a wire-backed endpoint's fault tolerance when
// declaring it with Runtime.AddRemoteChannel.
func WithRemoteTuning(t RemoteTuning) BufferOption {
	return runtime.WithRemoteTuning(t)
}

// NewRemoteServer starts a TCP channel server.
func NewRemoteServer(cfg RemoteServerConfig, channels ...string) (*RemoteServer, error) {
	return remote.NewServer(cfg, channels...)
}

// DialRemoteProducer attaches a producer connection to a remote channel.
func DialRemoteProducer(addr, channel string) (*RemoteProducer, error) {
	return remote.DialProducer(addr, channel)
}

// DialRemoteConsumer attaches a consumer connection to a remote channel.
func DialRemoteConsumer(addr, channel string) (*RemoteConsumer, error) {
	return remote.DialConsumer(addr, channel)
}

// DialRemoteProducerConfig attaches a producer with explicit
// fault-tolerance configuration (deadlines, backoff, retry budget).
func DialRemoteProducerConfig(cfg RemoteDialConfig) (*RemoteProducer, error) {
	return remote.DialProducerConfig(cfg)
}

// DialRemoteConsumerConfig attaches a consumer with explicit
// fault-tolerance configuration.
func DialRemoteConsumerConfig(cfg RemoteDialConfig) (*RemoteConsumer, error) {
	return remote.DialConsumerConfig(cfg)
}

// Live metrics and observability (see Options.Metrics, Options.
// MetricsAddr, Options.SampleEvery, and DESIGN.md §4f).
type (
	// MetricsRegistry is the zero-dependency live metrics registry:
	// atomic counters, gauges, and fixed-bucket histograms, rendered as
	// Prometheus text or JSON. Nil disables metrics at zero hot-path
	// cost.
	MetricsRegistry = metrics.Registry
	// MetricLabels attaches label key/values to a registered series.
	MetricLabels = metrics.Labels
	// Snapshot is Runtime.Snapshot()'s consistent point-in-time view:
	// controller state, buffer occupancy, and thread health, all
	// collected by one call.
	Snapshot = runtime.Snapshot
	// NodeStatus is one node's ARU state in a Snapshot.
	NodeStatus = runtime.NodeStatus
	// BufferStatus is one buffer endpoint's state in a Snapshot.
	BufferStatus = runtime.BufferStatus
)

// NewMetricsRegistry returns an empty live metrics registry to pass as
// Options.Metrics (and, for distributed runs, RemoteServerConfig.
// Metrics).
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// WithMetricsAddr returns opts with the observability HTTP endpoint
// enabled on addr (":0" binds an ephemeral port reported by
// Runtime.MetricsAddr), allocating a metrics registry if opts carries
// none. The endpoint serves /metrics (Prometheus text), /metrics.json,
// /status, and /health.
func WithMetricsAddr(opts Options, addr string) Options {
	opts.MetricsAddr = addr
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	return opts
}

// Elastic scheduling (see internal/sched and DESIGN.md §4k).
type (
	// ElasticConfig parameterizes the elastic, resource-aware scheduler:
	// the target per-stage service period it defends, the stages it may
	// scale, replica caps, hysteresis bands, and host placement weights.
	ElasticConfig = sched.Config
	// ControlLoop is a background control goroutine under the runtime's
	// lifecycle (Options.ControlLoops): spawned by Start, stopped and
	// joined by Stop/Wait.
	ControlLoop = runtime.ControlLoop
)

// WithElastic returns opts with the elastic scheduler's control loop
// installed: a clock-aware feedback loop that detects the bottleneck
// stage (max summary-STP plus inbound blocked-put pressure), replicates
// it into a supervised worker pool behind its buffer, and retires
// replicas drain-safely when the load subsides. Without this call no
// scheduler runs and the runtime behaves exactly as before — the
// elastic layer is strictly opt-in.
//
//	rt := aru.New(aru.WithElastic(aru.Options{...}, aru.ElasticConfig{
//		TargetPeriod: 40 * time.Millisecond,
//	}))
func WithElastic(opts Options, cfg ElasticConfig) Options {
	opts.ControlLoops = append(opts.ControlLoops, sched.Loop(cfg))
	return opts
}

// STPUnknown is the "no feedback yet" summary-STP value.
const STPUnknown = core.Unknown

// RunScenario executes one experiment cell.
func RunScenario(sc Scenario) (*bench.Result, error) { return bench.Run(sc) }

// RunSuite executes the full evaluation grid (both configurations, all
// three policies).
func RunSuite(envelope Scenario) (*Suite, error) { return bench.RunSuite(envelope) }
