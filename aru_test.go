package aru_test

import (
	"errors"
	"testing"
	"time"

	aru "repro"
)

// buildFanIn constructs two sources feeding one joiner through separate
// channels via the public API, returning the runtime and recorder.
func buildFanIn(t *testing.T, policy aru.Policy, perNode map[string]aru.Compressor) (*aru.Runtime, *aru.Recorder) {
	t.Helper()
	policy.PerNode = perNode
	rec := aru.NewRecorder()
	rt := aru.New(aru.Options{Clock: aru.NewVirtualClock(), ARU: policy, Recorder: rec})

	chA := rt.MustAddChannel("A", 0)
	chB := rt.MustAddChannel("B", 0)

	source := func(period time.Duration) aru.Body {
		return func(ctx *aru.Ctx) error {
			for ts := aru.Timestamp(1); !ctx.Stopped(); ts++ {
				ctx.Compute(period)
				if err := ctx.Put(ctx.Outs()[0], ts, nil, 1000); err != nil {
					return err
				}
				ctx.Sync()
			}
			return nil
		}
	}
	srcA := rt.MustAddThread("srcA", 0, source(5*time.Millisecond))
	srcB := rt.MustAddThread("srcB", 0, source(7*time.Millisecond))
	join := rt.MustAddThread("join", 0, func(ctx *aru.Ctx) error {
		for {
			if _, err := ctx.GetLatest(ctx.Ins()[0]); err != nil {
				return err
			}
			if _, err := ctx.GetLatest(ctx.Ins()[1]); err != nil {
				return err
			}
			ctx.Compute(40 * time.Millisecond)
			ctx.Emit()
			ctx.Sync()
		}
	})
	srcA.MustOutput(chA)
	srcB.MustOutput(chB)
	join.MustInput(chA)
	join.MustInput(chB)
	return rt, rec
}

func TestPublicAPIEndToEnd(t *testing.T) {
	rt, rec := buildFanIn(t, aru.PolicyMin(), nil)
	if err := rt.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	a, err := aru.Analyze(rec, 500*time.Millisecond, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outputs < 50 {
		t.Fatalf("outputs = %d, want a ~40ms-period stream", a.Outputs)
	}
	// With ARU-min both sources throttle toward the joiner's 40ms.
	if a.WastedMemPct > 30 {
		t.Errorf("wasted %.1f%% with ARU-min, expected mostly-throttled sources", a.WastedMemPct)
	}
}

func TestPublicAPINoARUWastes(t *testing.T) {
	rt, rec := buildFanIn(t, aru.PolicyOff(), nil)
	if err := rt.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	a, err := aru.Analyze(rec, 500*time.Millisecond, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a.WastedMemPct < 50 {
		t.Errorf("wasted only %.1f%% without ARU; sources at 5/7ms vs a 40ms joiner should waste most items", a.WastedMemPct)
	}
}

func TestPublicAPICustomCompressor(t *testing.T) {
	// A user-defined operator on the sources: always honor the joiner
	// but never exceed 25ms, keeping some slack. Exercises
	// Policy.PerNode + CompressorFunc through the façade.
	capAt := func(limit aru.STP) aru.Compressor {
		return aru.CompressorFunc{
			FuncName: "capped-min",
			Fn: func(vec []aru.STP) aru.STP {
				v := aru.MinCompressor.Compress(vec)
				if v.Known() && v > limit {
					return limit
				}
				return v
			},
		}
	}
	per := map[string]aru.Compressor{
		"srcA": capAt(aru.STP(25 * time.Millisecond)),
		"srcB": capAt(aru.STP(25 * time.Millisecond)),
	}
	rt, rec := buildFanIn(t, aru.PolicyMin(), per)
	if err := rt.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	a, err := aru.Analyze(rec, 500*time.Millisecond, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Sources run at ~25ms while the joiner consumes at ~40ms: some
	// waste remains by design, but far less than unthrottled.
	if a.WastedMemPct < 10 || a.WastedMemPct > 70 {
		t.Errorf("capped compressor wasted %.1f%%, want an intermediate level", a.WastedMemPct)
	}
}

func TestPublicAPIFilters(t *testing.T) {
	p := aru.PolicyMax()
	p.NewFilter = func() aru.Filter { return aru.NewEWMAFilter(0.4) }
	rt, rec := buildFanIn(t, p, nil)
	if err := rt.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := aru.Analyze(rec, 500*time.Millisecond, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPITrackerAndScenario(t *testing.T) {
	app, err := aru.NewTracker(aru.TrackerConfig{Seed: 5, Policy: aru.PolicyMax()})
	if err != nil {
		t.Fatal(err)
	}
	a, err := app.Run(20*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outputs == 0 {
		t.Fatal("tracker produced no outputs")
	}
	r, err := aru.RunScenario(aru.Scenario{Duration: 20 * time.Second, Warmup: 2 * time.Second, Seeds: []int64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if r.ThroughputMean <= 0 {
		t.Fatal("scenario produced no throughput")
	}
	if aru.DefaultTrackerTiming().CameraPeriod != 33*time.Millisecond {
		t.Error("DefaultTrackerTiming broken")
	}
	if aru.PaperTrackerSizes().Frame != 738<<10 {
		t.Error("PaperTrackerSizes broken")
	}
}

func TestPublicAPIRemote(t *testing.T) {
	srv, err := aru.NewRemoteServer(aru.RemoteServerConfig{Addr: "127.0.0.1:0"}, "frames")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	prod, err := aru.DialRemoteProducer(srv.Addr(), "frames")
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	cons, err := aru.DialRemoteConsumer(srv.Addr(), "frames")
	if err != nil {
		t.Fatal(err)
	}
	defer cons.Close()
	if _, err := prod.Put(1, []byte("hi"), 0); err != nil {
		t.Fatal(err)
	}
	item, err := cons.GetLatest(aru.STPUnknown)
	if err != nil {
		t.Fatal(err)
	}
	if item.TS != 1 || string(item.Payload) != "hi" {
		t.Fatalf("item = %+v", item)
	}
}

func TestPublicAPIErrShutdown(t *testing.T) {
	rec := aru.NewRecorder()
	rt := aru.New(aru.Options{Clock: aru.NewVirtualClock(), Recorder: rec})
	ch := rt.MustAddChannel("c", 0)
	p := rt.MustAddThread("p", 0, func(ctx *aru.Ctx) error { <-ctx.Done(); return nil })
	var sawShutdown bool
	s := rt.MustAddThread("s", 0, func(ctx *aru.Ctx) error {
		_, err := ctx.GetLatest(ctx.Ins()[0])
		sawShutdown = errors.Is(err, aru.ErrShutdown)
		return err
	})
	p.MustOutput(ch)
	s.MustInput(ch)
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	rt.Stop()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if !sawShutdown {
		t.Fatal("consumer must observe ErrShutdown on Stop")
	}
}

func TestPublicAPIClockConstructors(t *testing.T) {
	if aru.NewVirtualClock() == nil || aru.NewRealClock() == nil || aru.NewScaledClock(10) == nil {
		t.Fatal("clock constructors broken")
	}
	clk := aru.NewVirtualClock()
	cluster := aru.NewCluster(clk, aru.ClusterSpec{Hosts: 3, Link: aru.GigabitEthernet})
	if cluster.Hosts() != 3 {
		t.Fatal("cluster constructor broken")
	}
	if aru.NewDGC().Name() != "dgc" || aru.NewTGC().Name() != "tgc" || aru.NewNoGC().Name() != "none" {
		t.Fatal("collector constructors broken")
	}
}
